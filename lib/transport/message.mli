(** Protocol messages exchanged between client (series X owner, ciphertext
    evaluator) and server (series Y owner, secret-key holder).

    Ciphertexts travel as raw [Bigint.t] residues mod [n^2]; the protocol
    layer re-wraps them against the session's public key, validating the
    range on receipt. *)

open Ppst_bigint

type spec = { series_len : int; dimension : int }
(** Resource declaration a client may attach to [Hello]: the length and
    dimension of the series it intends to evaluate.  Both quantities are
    public in the paper's model (Section 2), so declaring them up front
    adds zero leakage while letting the server run its admission checks
    (cell budget [m*n], length and dimension caps — {!Admission}) before
    a single Paillier operation is spent on the session. *)

type request =
  | Hello of { flags : int; spec : spec option }
      (** Session opening: asks for the public key and the server
          series' public metadata (length, dimension, value bound —
          the matrix dimensions are public in the paper's model).
          [flags] offers transport capabilities ({!flag_crc32},
          {!flag_resume}); [0] encodes byte-identically to the PR 3
          format, so old peers interop unchanged.  [spec], when
          present (marked on the wire by {!flag_spec}, which the
          encoder derives automatically), declares the client's series
          size for admission control; servers that predate the
          extension answer with [Error_reply] and the client falls
          back to a bare [Hello]. *)
  | Phase1_request
      (** Ask for the encrypted server series (paper Section 3.2: the
          one-way transfer of [Enc(Σq²)] and each [Enc(q_i)]). *)
  | Min_request of Bigint.t array
      (** Phase 2: masked candidates; the server must reply with a fresh
          encryption of the minimum plaintext. *)
  | Max_request of Bigint.t array
      (** Phase 3 (DFD only): masked candidates; reply encrypts the
          maximum. *)
  | Reveal_request of Bigint.t
      (** Final step: ciphertext of the result for joint disclosure. *)
  | Catalog_request
      (** Similarity-search extension: ask for the lengths of every record
          the server holds (dimension and value bound are in [Welcome]). *)
  | Select_request of int
      (** Similarity-search extension: make record [i] the active series
          for subsequent [Phase1_request]s. *)
  | Batch_min_request of Bigint.t array array
      (** Wavefront extension: several independent masked-minimum
          instances (one per DP anti-diagonal cell) answered in a single
          round trip.  Each inner array is one candidate set. *)
  | Batch_max_request of Bigint.t array array
  | Packed_min_request of { slot_bits : int; counts : int array; packed : Bigint.t array }
      (** Packing extension (tag [0x0E], requires granted
          {!flag_packing}): the masked candidate sets of many
          minimum-selection instances, concatenated and packed
          [slot_bits] bits per plaintext slot into as few ciphertexts
          as the modulus can hold.  [counts.(i)] is the candidate
          count of instance [i]; the flattened sequence fills each
          ciphertext of [packed] in order.  Answered by
          [Batch_cipher_reply] with one fresh encryption of the
          extreme per instance, in request order. *)
  | Packed_max_request of { slot_bits : int; counts : int array; packed : Bigint.t array }
      (** Same, selecting the maximum (tag [0x0F]). *)
  | Stats_req
      (** Observability (tag [0x0B]): ask for the server's metrics
          snapshot.  Answered by {!Server_loop} itself — even at capacity
          — so an operator can inspect a running daemon without consuming
          a session slot; in-process servers answer with the process-wide
          {!Ppst_telemetry.Metrics} exposition. *)
  | Bye
  | Resume of { token : string; client_rounds : int; flags : int }
      (** Reconnect (tag [0x0C], always the first frame of its
          connection): present the token from [Welcome] and the number
          of reply frames this client has fully received
          ([client_rounds]), re-offering capability [flags] for the new
          connection.  Answered by [Resume_ack] or [Resume_reject]. *)
  | Health_req
      (** Readiness probe (tag [0x0D]): ask whether the server is
          accepting new sessions.  Like [Stats_req] it is answered by
          {!Server_loop} itself, without consuming a session slot, and
          is served even at capacity, under load shed and on
          rate-limited connections — an operator or load balancer can
          always tell a saturated server from a dead one. *)
  | Catalog_list_request
      (** Catalog extension (tag [0x10], requires granted
          {!flag_catalog}): enumerate the server's record store — ids
          and lengths.  Both are public metadata in the catalog model
          (the store admits by id; lengths were already disclosed by
          [Catalog_reply]). *)
  | Query_submit of { segments : int; band : int option; indices : int array }
      (** Catalog extension (tag [0x11]): open a pruning round over the
          records at [indices].  The server answers with a
          [Query_sketch]: for each candidate, encryptions of its
          per-segment, per-dimension coupling-window extremes
          ([Lower_bound.segment_bounds ~segments ~band]), from which
          the client assembles the secure lower-bound statistic without
          the server ever seeing the query.  [band = None] means the
          unbanded coupling window (whole series); [Some 0] lockstep
          (Euclidean). *)
  | Verdict_request of Bigint.t array
      (** Catalog extension (tag [0x12]): one multiplicatively blinded
          threshold difference [Enc(ρ·(G - τ_G - 1) + μ)] per pending
          candidate.  The server decrypts and reports only the sign of
          each plaintext ([Verdict_reply]) — the magnitude is blinded by
          [ρ, μ], so the server learns one bit per candidate: prune or
          survive (SECURITY.md). *)
  | Metrics_req
      (** Observability extension (tag [0x13], requires granted
          {!flag_metrics}): ask for the OpenMetrics text page — the full
          registry plus windowed rollups, exactly what the sidecar HTTP
          endpoint serves.  Like [Stats_req]/[Health_req] it is also
          answered on probe connections at capacity, without consuming a
          session slot. *)

type phase1_element = {
  sum_sq : Bigint.t;  (** [Enc(Σ_l y_{j,l}²)] *)
  coords : Bigint.t array;  (** [Enc(y_{j,l})] for each dimension [l] *)
}

type sketch = {
  lo : Bigint.t array;
      (** [Enc(Lo_{s,l})] — segment-major, dimension-minor flattening of
          the candidate's per-segment window minima *)
  hi : Bigint.t array;  (** [Enc(Hi_{s,l})], same layout *)
}
(** Encrypted pruning sketch of one catalog candidate
    ([Lower_bound.segment_bounds] under the session key). *)

type reply =
  | Welcome of {
      n : Bigint.t;  (** Paillier modulus *)
      key_bits : int;
      series_length : int;
      dimension : int;
      max_value : int;
      flags : int;
          (** capabilities granted for this session = client offer AND
              server support; [0] omits the extension bytes entirely
              (PR 3 wire compatibility) *)
      resume_token : string;
          (** 16 random bytes from the server CSPRNG when
              {!flag_resume} is granted, [""] otherwise.  Pure
              randomness, never derived from key or protocol state
              (SECURITY.md). *)
    }
  | Phase1_reply of phase1_element array
  | Cipher_reply of Bigint.t
  | Reveal_reply of Bigint.t
  | Catalog_reply of int array  (** length of each record *)
  | Select_ack of int
  | Batch_cipher_reply of Bigint.t array
      (** One fresh encryption of the extreme per requested instance, in
          request order. *)
  | Bye_ack of { server_seconds : float }
      (** Final accounting reply: total wall-clock time the server spent
          inside its request handler this session.  A TCP server reports
          its measured total here (see {!Channel.serve_once}); in-process
          servers send [0.] because {!Channel.local} times the handler
          itself. *)
  | Stats_reply of string
      (** Observability (tag [0x8A]): the metrics text exposition
          ({!Ppst_telemetry.Metrics.dump} format, prefixed with the
          serving loop's live session counters).  Carries only metric
          names and numbers — never protocol values. *)
  | Busy of { retry_after_s : float }
      (** Capacity rejection (tag [0x8E]): the server is at its
          concurrent-session limit.  Sent by {!Server_loop} immediately
          after accept, before any request is read, then the connection
          is closed.  [retry_after_s] is a backoff hint; clients see it
          as {!Channel.Busy}. *)
  | Error_reply of string
      (** Typed in-band failure (bad request for session state, malformed
          candidates, ...). *)
  | Resume_ack of { server_rounds : int; reply : string; flags : int }
      (** Resume accepted (tag [0x8B]).  [server_rounds] is how many
          replies the server has produced for this session; when it is
          ahead of the client's [client_rounds] (the reply to the
          in-flight request was computed but lost in transit), [reply]
          carries that last reply, re-encoded, so the client consumes it
          instead of re-sending — the round is never executed twice.
          [flags] are the capabilities in force on the new connection. *)
  | Resume_reject of { reason : string }
      (** Resume refused (tag [0x8C]): unknown, expired or evicted
          token.  The session cannot be recovered; the client must
          restart from [Hello]. *)
  | Quota_exceeded of { quota : string; limit : int; requested : int }
      (** Admission rejection (tag [0x8D]): the request would exceed a
          per-session resource budget ({!Admission}).  [quota] is a
          static budget name ("cells", "series-len", "dim", "bytes",
          "frames"), [limit] the configured cap and [requested] the
          size that tripped it — all three are public quantities, so
          the reject leaks nothing (SECURITY.md).  Unlike [Busy] it is
          not retryable: the same request will always be rejected. *)
  | Health_reply of {
      status : int;
          (** [0] ready; [1] at session capacity; [2] shedding load;
              [3] degraded — the session spool is unwritable
              (durability lost): sessions are still served but do not
              survive a worker crash until the spool recovers *)
      active : int;  (** sessions currently being served *)
      capacity : int;  (** configured concurrent-session limit *)
      retry_after_s : float;
          (** backoff hint when [status <> 0]; [0.] when ready *)
    }
      (** Readiness report (tag [0x8F]), answering [Health_req]. *)
  | Catalog_list_reply of { ids : string array; lengths : int array }
      (** Catalog enumeration (tag [0x90]); [ids.(i)] and [lengths.(i)]
          describe the same record, and the position [i] is the index
          [Query_submit]/[Select_request] refer to. *)
  | Query_sketch of sketch array
      (** Pruning sketches (tag [0x91]), one per candidate of the
          [Query_submit], in request order. *)
  | Verdict_reply of bool array
      (** Pruning verdicts (tag [0x92]), one per blinded candidate of
          the [Verdict_request], in request order: [true] = the
          candidate survives (its lower bound does not clear the
          threshold), [false] = it is pruned. *)
  | Metrics_reply of string
      (** OpenMetrics text page (tag [0x93]), answering [Metrics_req].
          Same leakage surface as [Stats_reply]: static metric names and
          aggregate numbers only ({!Ppst_telemetry.Exposition}). *)

type t = Request of request | Reply of reply

val encode : t -> string
val decode : string -> t
(** @raise Wire.Malformed on any framing or tag error. *)

val describe : t -> string
(** One-line human description for logs. *)

val values_in : t -> int
(** Number of protocol-level "values" (ciphertexts/plaintexts) carried —
    the unit the paper's communication analysis counts (Section 5.2). *)

(** {1 Wire tags}

    First byte of every encoded message (requests [0x0*], replies
    [0x8*]).  Exposed so trace tooling ([ppst_analyze trace]) can label
    the opcodes telemetry records without re-parsing frames. *)

val tag_hello : int
val tag_phase1_request : int
val tag_min_request : int
val tag_max_request : int
val tag_reveal_request : int
val tag_bye : int
val tag_catalog_request : int
val tag_select_request : int
val tag_batch_min_request : int
val tag_batch_max_request : int
val tag_stats_request : int
val tag_resume : int
val tag_health_request : int
val tag_packed_min_request : int
val tag_packed_max_request : int
val tag_catalog_list_request : int
val tag_query_submit : int
val tag_verdict_request : int
val tag_metrics_request : int
val tag_welcome : int
val tag_phase1_reply : int
val tag_cipher_reply : int
val tag_reveal_reply : int
val tag_bye_ack : int
val tag_error_reply : int
val tag_catalog_reply : int
val tag_select_ack : int
val tag_batch_cipher_reply : int
val tag_stats_reply : int
val tag_resume_ack : int
val tag_resume_reject : int
val tag_quota_exceeded : int
val tag_busy : int
val tag_health_reply : int
val tag_catalog_list_reply : int
val tag_query_sketch : int
val tag_verdict_reply : int
val tag_metrics_reply : int

(** {1 Capability flags}

    Bits of [Hello.flags] (offer) and [Welcome.flags]/[Resume_ack.flags]
    (grant). *)

val flag_crc32 : int
(** [0x01]: every subsequent frame on the connection carries a CRC-32
    trailer ({!Crc32}); a mismatch surfaces as
    {!Channel.Frame_corrupt}, never as garbage handed to the codec. *)

val flag_resume : int
(** [0x02]: the server issues a resume token and parks session state on
    disconnect ({!Resume_table}), enabling the [Resume] handshake. *)

val flag_spec : int
(** [0x04]: a resource {!spec} (series length + dimension) follows the
    flags byte in [Hello].  Derived from the [spec] field by the
    encoder — never set it by hand in [Hello.flags]. *)

val flag_packing : int
(** [0x08]: the server accepts [Packed_min_request]/[Packed_max_request]
    frames for this session.  A throughput capability only — packed
    frames carry exactly the masked quantities the unpacked frames
    would, so granting it adds zero leakage (SECURITY.md). *)

val flag_catalog : int
(** [0x10]: the server accepts [Catalog_list_request], [Query_submit]
    and [Verdict_request] frames — the 1-vs-N catalog-search extension.
    Leakage is confined to public metadata (ids, lengths) plus one
    survive/prune bit per queried candidate (SECURITY.md). *)

val flag_metrics : int
(** [0x20]: the server accepts [Metrics_req] frames for this session —
    the observability extension.  Aggregate-only surface, identical in
    kind to [Stats_req] (SECURITY.md). *)
