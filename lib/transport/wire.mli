(** Binary wire primitives: length-prefixed, big-endian framing used by
    {!Message}.  All reads are bounds-checked and raise {!Malformed}
    rather than any array/string exception, so a corrupted or adversarial
    peer cannot crash a party with an unexpected exception type. *)

exception Malformed of string

(** {1 Writing} *)

type writer

val writer : unit -> writer
val put_u8 : writer -> int -> unit
val put_u32 : writer -> int -> unit
(** @raise Invalid_argument outside [\[0, 2^32)]. *)

val put_bytes : writer -> string -> unit
(** Length-prefixed byte string. *)

val put_f64 : writer -> float -> unit
(** IEEE-754 double as its 8-byte big-endian bit pattern (exact
    round-trip, NaN included). *)

val put_bigint : writer -> Ppst_bigint.Bigint.t -> unit
(** Sign byte + length-prefixed magnitude. *)

val put_bigint_array : writer -> Ppst_bigint.Bigint.t array -> unit
val contents : writer -> string

(** {1 Reading} *)

type reader

val reader : string -> reader
val get_u8 : reader -> int
val get_u32 : reader -> int
val get_f64 : reader -> float
val get_bytes : reader -> string
val get_bigint : reader -> Ppst_bigint.Bigint.t
val get_bigint_array : reader -> Ppst_bigint.Bigint.t array
val expect_end : reader -> unit
(** @raise Malformed when trailing bytes remain. *)

val remaining : reader -> int
