(* Sidecar HTTP listener for Prometheus-style scrapes.

   A deliberately tiny HTTP/1.0 responder: one background thread accepts
   connections, reads whatever request line + headers arrive within a
   short deadline, and answers every path with the rendered metrics page.
   It lives on its own port — separate from the framed protocol listener
   — so scraping never competes with sessions for slots, admission or
   rate limits, and a hung scraper can at worst stall the sidecar thread,
   never the serving loop.

   The page is the same aggregate-only surface as Stats_req/Metrics_req
   (static metric names + numbers), so exposing it over plain HTTP adds
   no leakage beyond what the wire message already grants. *)

module Rollup = Ppst_telemetry.Rollup
module Exposition = Ppst_telemetry.Exposition
module Metrics = Ppst_telemetry.Metrics

let m_scrapes = Metrics.counter "metrics.endpoint.scrapes"
let m_errors = Metrics.counter "metrics.endpoint.errors"

type t = {
  listener : Unix.file_descr;
  port : int;
  stop_flag : bool Atomic.t;
  mutable thread : Thread.t option;
}

let default_render () = Exposition.render ~rollup:(Rollup.global ()) ()

(* Read until the blank line ending the headers, EOF, a size cap or the
   deadline — whichever comes first.  The request itself is ignored
   (every path serves the page), so tolerance beats strictness here. *)
let drain_request fd =
  let deadline = Monoclock.now () +. 2.0 in
  let buf = Bytes.create 1024 in
  let seen = Buffer.create 256 in
  let rec go () =
    if Monoclock.now () >= deadline || Buffer.length seen > 8192 then ()
    else
      match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> go ()
      | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes seen buf 0 n;
          let s = Buffer.contents seen in
          let terminated i sep =
            let l = String.length sep in
            String.length s >= i + l && String.sub s i l = sep
          in
          let rec find i =
            if i > String.length s - 2 then false
            else terminated i "\r\n\r\n" || terminated i "\n\n" || find (i + 1)
          in
          if not (find 0) then go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> go ())
  in
  (try go () with Unix.Unix_error _ -> ())

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> ()
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let handle_conn render fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      drain_request fd;
      let body = render () in
      let head =
        Printf.sprintf
          "HTTP/1.0 200 OK\r\n\
           Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
           Content-Length: %d\r\n\
           Connection: close\r\n\
           \r\n"
          (String.length body)
      in
      write_all fd (head ^ body);
      Metrics.incr m_scrapes)

let serve t render =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listener ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.listener with
      | fd, _ -> (
        try handle_conn render fd
        with _ -> Metrics.incr m_errors)
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  done

let start ?(render = default_render) ~port () =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen listener 16
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { listener; port; stop_flag = Atomic.make false; thread = None } in
  t.thread <- Some (Thread.create (fun () -> serve t render) ());
  t

let port t = t.port

let stop t =
  Atomic.set t.stop_flag true;
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None;
  try Unix.close t.listener with Unix.Unix_error _ -> ()
