(* Serializable session snapshot: everything Server_loop needs to
   reconstitute a parked session in a different worker process, plus an
   opaque application blob (the core server's own state codec).

   Replaces the non-serializable handler closure as the unit of session
   externalization.  Every field is either data the client already sent
   on the wire (token, capability flags, declared spec via the admission
   ledger) or a count of the session's own traffic — so spooling a
   snapshot adds no leakage beyond what a parked in-memory session
   already held (SECURITY.md). *)

type t = {
  token : string;  (* 16-byte resume token, spool key and wire identity *)
  granted : int;  (* negotiated capability flags *)
  server_rounds : int;  (* rounds counted by the server (exactly-once) *)
  last_reply : string;  (* encoded reply of the last counted round *)
  requests : int;
  handler_seconds : float;
  server_len : int;  (* active record length for admission pricing *)
  catalog : int array option;  (* record lengths, when Catalog_reply was sent *)
  admission : string;  (* Admission.export blob *)
  app : string;  (* application state blob (Server.export_state) *)
}

let version = 1

let put_opt_int_array w = function
  | None -> Wire.put_u8 w 0
  | Some arr ->
    Wire.put_u8 w 1;
    Wire.put_u32 w (Array.length arr);
    Array.iter (Wire.put_u32 w) arr

let get_opt_int_array r =
  match Wire.get_u8 r with
  | 0 -> None
  | 1 ->
    let n = Wire.get_u32 r in
    if n * 4 > Wire.remaining r then
      raise (Wire.Malformed "Snapshot: array count exceeds frame capacity");
    Some (Array.init n (fun _ -> Wire.get_u32 r))
  | b -> raise (Wire.Malformed (Printf.sprintf "Snapshot: bad option tag %d" b))

let encode t =
  let w = Wire.writer () in
  Wire.put_u8 w version;
  Wire.put_bytes w t.token;
  Wire.put_u32 w t.granted;
  Wire.put_u32 w t.server_rounds;
  Wire.put_bytes w t.last_reply;
  Wire.put_u32 w t.requests;
  Wire.put_f64 w t.handler_seconds;
  Wire.put_u32 w t.server_len;
  put_opt_int_array w t.catalog;
  Wire.put_bytes w t.admission;
  Wire.put_bytes w t.app;
  Wire.contents w

let decode blob =
  let r = Wire.reader blob in
  let v = Wire.get_u8 r in
  if v <> version then
    raise (Wire.Malformed (Printf.sprintf "Snapshot: unsupported version %d" v));
  let token = Wire.get_bytes r in
  let granted = Wire.get_u32 r in
  let server_rounds = Wire.get_u32 r in
  let last_reply = Wire.get_bytes r in
  let requests = Wire.get_u32 r in
  let handler_seconds = Wire.get_f64 r in
  let server_len = Wire.get_u32 r in
  let catalog = get_opt_int_array r in
  let admission = Wire.get_bytes r in
  let app = Wire.get_bytes r in
  Wire.expect_end r;
  {
    token;
    granted;
    server_rounds;
    last_reply;
    requests;
    handler_seconds;
    server_len;
    catalog;
    admission;
    app;
  }
