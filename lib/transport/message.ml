open Ppst_bigint

type spec = { series_len : int; dimension : int }

type request =
  | Hello of { flags : int; spec : spec option }
  | Phase1_request
  | Min_request of Bigint.t array
  | Max_request of Bigint.t array
  | Reveal_request of Bigint.t
  | Catalog_request
  | Select_request of int
  | Batch_min_request of Bigint.t array array
  | Batch_max_request of Bigint.t array array
  | Packed_min_request of { slot_bits : int; counts : int array; packed : Bigint.t array }
  | Packed_max_request of { slot_bits : int; counts : int array; packed : Bigint.t array }
  | Stats_req
  | Bye
  | Resume of { token : string; client_rounds : int; flags : int }
  | Health_req
  | Catalog_list_request
  | Query_submit of { segments : int; band : int option; indices : int array }
  | Verdict_request of Bigint.t array
  | Metrics_req

type phase1_element = { sum_sq : Bigint.t; coords : Bigint.t array }
type sketch = { lo : Bigint.t array; hi : Bigint.t array }

type reply =
  | Welcome of {
      n : Bigint.t;
      key_bits : int;
      series_length : int;
      dimension : int;
      max_value : int;
      flags : int;
      resume_token : string;
    }
  | Phase1_reply of phase1_element array
  | Cipher_reply of Bigint.t
  | Reveal_reply of Bigint.t
  | Catalog_reply of int array
  | Select_ack of int
  | Batch_cipher_reply of Bigint.t array
  | Bye_ack of { server_seconds : float }
  | Stats_reply of string
  | Busy of { retry_after_s : float }
  | Error_reply of string
  | Resume_ack of { server_rounds : int; reply : string; flags : int }
  | Resume_reject of { reason : string }
  | Quota_exceeded of { quota : string; limit : int; requested : int }
  | Health_reply of {
      status : int;
      active : int;
      capacity : int;
      retry_after_s : float;
    }
  | Catalog_list_reply of { ids : string array; lengths : int array }
  | Query_sketch of sketch array
  | Verdict_reply of bool array
  | Metrics_reply of string

type t = Request of request | Reply of reply

(* Frame tags.  Requests are 0x0*, replies 0x8*. *)
let tag_hello = 0x01
let tag_phase1_request = 0x02
let tag_min_request = 0x03
let tag_max_request = 0x04
let tag_reveal_request = 0x05
let tag_bye = 0x06
let tag_catalog_request = 0x07
let tag_select_request = 0x08
let tag_batch_min_request = 0x09
let tag_batch_max_request = 0x0a
let tag_stats_request = 0x0b
let tag_resume = 0x0c
let tag_health_request = 0x0d
let tag_packed_min_request = 0x0e
let tag_packed_max_request = 0x0f
let tag_catalog_list_request = 0x10
let tag_query_submit = 0x11
let tag_verdict_request = 0x12
let tag_metrics_request = 0x13
let tag_welcome = 0x81
let tag_phase1_reply = 0x82
let tag_cipher_reply = 0x83
let tag_reveal_reply = 0x84
let tag_bye_ack = 0x85
let tag_error_reply = 0x86
let tag_catalog_reply = 0x87
let tag_select_ack = 0x88
let tag_batch_cipher_reply = 0x89
let tag_stats_reply = 0x8a
let tag_resume_ack = 0x8b
let tag_resume_reject = 0x8c
let tag_quota_exceeded = 0x8d
let tag_busy = 0x8e
let tag_health_reply = 0x8f
let tag_catalog_list_reply = 0x90
let tag_query_sketch = 0x91
let tag_verdict_reply = 0x92
let tag_metrics_reply = 0x93

(* Capability bits carried in [Hello.flags] (the client's offer) and
   echoed back in [Welcome.flags] (the server's grant = offer AND
   support).  A flags value of 0 encodes byte-identically to the PR 3
   wire format, which is the whole interop story (PROTOCOL.md s.9). *)
let flag_crc32 = 0x01
let flag_resume = 0x02

(* [flag_spec] marks the presence of a resource spec after the flags
   byte in [Hello]: the client declares its series length and dimension
   up front so the server can run admission checks (m*n cell budget,
   length/dimension caps) before a single Paillier operation.  The bit
   is derived from [spec] at encode time, never set by hand. *)
let flag_spec = 0x04

(* [flag_packing] grants the plaintext-packing extension: the client may
   send [Packed_min_request]/[Packed_max_request] frames carrying many
   masked candidates per ciphertext.  Purely a throughput optimisation —
   the candidates are the same masked quantities the unpacked frames
   carry (SECURITY.md s.Packing). *)
let flag_packing = 0x08

(* [flag_catalog] grants the 1-vs-N catalog extension: catalog-list
   (id+length enumeration), query-submit (encrypted per-segment
   lower-bound sketches of the selected candidates) and the blinded
   candidate-verdict round.  Like [flag_packing] this is a pure
   capability — a flags-0 session never sees the new tags and its
   transcript stays byte-identical. *)
let flag_catalog = 0x10

(* [flag_metrics] grants the observability extension: [Metrics_req]
   returns the OpenMetrics text page (registry + windowed rollups) the
   sidecar HTTP endpoint serves.  Pure capability — the page carries the
   same aggregate-only surface as [Stats_reply], and a session that never
   offers the bit has a byte-identical transcript. *)
let flag_metrics = 0x20

let encode t =
  let w = Wire.writer () in
  (match t with
   | Request (Hello { flags; spec }) ->
     Wire.put_u8 w tag_hello;
     let flags =
       match spec with
       | Some _ -> flags lor flag_spec
       | None -> flags land lnot flag_spec
     in
     (* flags = 0 stays a bare tag byte: old peers decode it unchanged *)
     if flags <> 0 then Wire.put_u8 w flags;
     (match spec with
      | None -> ()
      | Some { series_len; dimension } ->
        Wire.put_u32 w series_len;
        Wire.put_u32 w dimension)
   | Request Phase1_request -> Wire.put_u8 w tag_phase1_request
   | Request (Min_request candidates) ->
     Wire.put_u8 w tag_min_request;
     Wire.put_bigint_array w candidates
   | Request (Max_request candidates) ->
     Wire.put_u8 w tag_max_request;
     Wire.put_bigint_array w candidates
   | Request (Reveal_request c) ->
     Wire.put_u8 w tag_reveal_request;
     Wire.put_bigint w c
   | Request Catalog_request -> Wire.put_u8 w tag_catalog_request
   | Request (Select_request i) ->
     Wire.put_u8 w tag_select_request;
     Wire.put_u32 w i
   | Request (Batch_min_request sets) ->
     Wire.put_u8 w tag_batch_min_request;
     Wire.put_u32 w (Array.length sets);
     Array.iter (Wire.put_bigint_array w) sets
   | Request (Batch_max_request sets) ->
     Wire.put_u8 w tag_batch_max_request;
     Wire.put_u32 w (Array.length sets);
     Array.iter (Wire.put_bigint_array w) sets
   | Request (Packed_min_request { slot_bits; counts; packed }) ->
     Wire.put_u8 w tag_packed_min_request;
     Wire.put_u8 w slot_bits;
     Wire.put_u32 w (Array.length counts);
     Array.iter (Wire.put_u32 w) counts;
     Wire.put_bigint_array w packed
   | Request (Packed_max_request { slot_bits; counts; packed }) ->
     Wire.put_u8 w tag_packed_max_request;
     Wire.put_u8 w slot_bits;
     Wire.put_u32 w (Array.length counts);
     Array.iter (Wire.put_u32 w) counts;
     Wire.put_bigint_array w packed
   | Request Stats_req -> Wire.put_u8 w tag_stats_request
   | Request Health_req -> Wire.put_u8 w tag_health_request
   | Request Catalog_list_request -> Wire.put_u8 w tag_catalog_list_request
   | Request (Query_submit { segments; band; indices }) ->
     Wire.put_u8 w tag_query_submit;
     Wire.put_u32 w segments;
     (* band + 1, so 0 encodes "unbanded" *)
     Wire.put_u32 w (match band with None -> 0 | Some b -> b + 1);
     Wire.put_u32 w (Array.length indices);
     Array.iter (Wire.put_u32 w) indices
   | Request (Verdict_request blinded) ->
     Wire.put_u8 w tag_verdict_request;
     Wire.put_bigint_array w blinded
   | Request Metrics_req -> Wire.put_u8 w tag_metrics_request
   | Request Bye -> Wire.put_u8 w tag_bye
   | Request (Resume { token; client_rounds; flags }) ->
     Wire.put_u8 w tag_resume;
     Wire.put_bytes w token;
     Wire.put_u32 w client_rounds;
     Wire.put_u8 w flags
   | Reply (Welcome { n; key_bits; series_length; dimension; max_value; flags; resume_token }) ->
     Wire.put_u8 w tag_welcome;
     Wire.put_bigint w n;
     Wire.put_u32 w key_bits;
     Wire.put_u32 w series_length;
     Wire.put_u32 w dimension;
     Wire.put_u32 w max_value;
     (* capability extension: absent entirely when nothing is granted,
        so a PR 3 peer sees exactly the frame it always saw *)
     if flags <> 0 || resume_token <> "" then begin
       Wire.put_u8 w flags;
       Wire.put_bytes w resume_token
     end
   | Reply (Phase1_reply elements) ->
     Wire.put_u8 w tag_phase1_reply;
     Wire.put_u32 w (Array.length elements);
     Array.iter
       (fun { sum_sq; coords } ->
         Wire.put_bigint w sum_sq;
         Wire.put_bigint_array w coords)
       elements
   | Reply (Cipher_reply c) ->
     Wire.put_u8 w tag_cipher_reply;
     Wire.put_bigint w c
   | Reply (Reveal_reply v) ->
     Wire.put_u8 w tag_reveal_reply;
     Wire.put_bigint w v
   | Reply (Catalog_reply lengths) ->
     Wire.put_u8 w tag_catalog_reply;
     Wire.put_u32 w (Array.length lengths);
     Array.iter (Wire.put_u32 w) lengths
   | Reply (Select_ack i) ->
     Wire.put_u8 w tag_select_ack;
     Wire.put_u32 w i
   | Reply (Batch_cipher_reply replies) ->
     Wire.put_u8 w tag_batch_cipher_reply;
     Wire.put_bigint_array w replies
   | Reply (Bye_ack { server_seconds }) ->
     Wire.put_u8 w tag_bye_ack;
     Wire.put_f64 w server_seconds
   | Reply (Stats_reply text) ->
     Wire.put_u8 w tag_stats_reply;
     Wire.put_bytes w text
   | Reply (Metrics_reply text) ->
     Wire.put_u8 w tag_metrics_reply;
     Wire.put_bytes w text
   | Reply (Busy { retry_after_s }) ->
     Wire.put_u8 w tag_busy;
     Wire.put_f64 w retry_after_s
   | Reply (Error_reply msg) ->
     Wire.put_u8 w tag_error_reply;
     Wire.put_bytes w msg
   | Reply (Resume_ack { server_rounds; reply; flags }) ->
     Wire.put_u8 w tag_resume_ack;
     Wire.put_u32 w server_rounds;
     Wire.put_bytes w reply;
     Wire.put_u8 w flags
   | Reply (Resume_reject { reason }) ->
     Wire.put_u8 w tag_resume_reject;
     Wire.put_bytes w reason
   | Reply (Quota_exceeded { quota; limit; requested }) ->
     Wire.put_u8 w tag_quota_exceeded;
     Wire.put_bytes w quota;
     Wire.put_u32 w limit;
     Wire.put_u32 w requested
   | Reply (Health_reply { status; active; capacity; retry_after_s }) ->
     Wire.put_u8 w tag_health_reply;
     Wire.put_u8 w status;
     Wire.put_u32 w active;
     Wire.put_u32 w capacity;
     Wire.put_f64 w retry_after_s
   | Reply (Catalog_list_reply { ids; lengths }) ->
     Wire.put_u8 w tag_catalog_list_reply;
     Wire.put_u32 w (Array.length ids);
     Array.iter (Wire.put_bytes w) ids;
     Array.iter (Wire.put_u32 w) lengths
   | Reply (Query_sketch sketches) ->
     Wire.put_u8 w tag_query_sketch;
     Wire.put_u32 w (Array.length sketches);
     Array.iter
       (fun { lo; hi } ->
         Wire.put_bigint_array w lo;
         Wire.put_bigint_array w hi)
       sketches
   | Reply (Verdict_reply survive) ->
     Wire.put_u8 w tag_verdict_reply;
     Wire.put_u32 w (Array.length survive);
     Array.iter (fun b -> Wire.put_u8 w (if b then 1 else 0)) survive);
  Wire.contents w

let decode s =
  let r = Wire.reader s in
  let tag = Wire.get_u8 r in
  let msg =
    if tag = tag_hello then
      let flags = if Wire.remaining r > 0 then Wire.get_u8 r else 0 in
      let spec =
        if flags land flag_spec <> 0 then begin
          let series_len = Wire.get_u32 r in
          let dimension = Wire.get_u32 r in
          Some { series_len; dimension }
        end
        else None
      in
      Request (Hello { flags; spec })
    else if tag = tag_phase1_request then Request Phase1_request
    else if tag = tag_min_request then Request (Min_request (Wire.get_bigint_array r))
    else if tag = tag_max_request then Request (Max_request (Wire.get_bigint_array r))
    else if tag = tag_reveal_request then Request (Reveal_request (Wire.get_bigint r))
    else if tag = tag_catalog_request then Request Catalog_request
    else if tag = tag_select_request then Request (Select_request (Wire.get_u32 r))
    else if tag = tag_batch_min_request || tag = tag_batch_max_request then begin
      let count = Wire.get_u32 r in
      if count * 6 > String.length s then
        raise (Wire.Malformed "batch count exceeds frame capacity");
      let sets = Array.init count (fun _ -> Wire.get_bigint_array r) in
      if tag = tag_batch_min_request then Request (Batch_min_request sets)
      else Request (Batch_max_request sets)
    end
    else if tag = tag_packed_min_request || tag = tag_packed_max_request then begin
      let slot_bits = Wire.get_u8 r in
      if slot_bits = 0 then raise (Wire.Malformed "packed slot_bits must be positive");
      let count = Wire.get_u32 r in
      if count * 4 > String.length s then
        raise (Wire.Malformed "packed instance count exceeds frame capacity");
      let counts = Array.init count (fun _ -> Wire.get_u32 r) in
      let packed = Wire.get_bigint_array r in
      if tag = tag_packed_min_request then
        Request (Packed_min_request { slot_bits; counts; packed })
      else Request (Packed_max_request { slot_bits; counts; packed })
    end
    else if tag = tag_stats_request then Request Stats_req
    else if tag = tag_health_request then Request Health_req
    else if tag = tag_catalog_list_request then Request Catalog_list_request
    else if tag = tag_query_submit then begin
      let segments = Wire.get_u32 r in
      let band = match Wire.get_u32 r with 0 -> None | b -> Some (b - 1) in
      let count = Wire.get_u32 r in
      if count * 4 > String.length s then
        raise (Wire.Malformed "query index count exceeds frame capacity");
      let indices = Array.init count (fun _ -> Wire.get_u32 r) in
      Request (Query_submit { segments; band; indices })
    end
    else if tag = tag_verdict_request then
      Request (Verdict_request (Wire.get_bigint_array r))
    else if tag = tag_metrics_request then Request Metrics_req
    else if tag = tag_bye then Request Bye
    else if tag = tag_resume then begin
      let token = Wire.get_bytes r in
      let client_rounds = Wire.get_u32 r in
      let flags = Wire.get_u8 r in
      Request (Resume { token; client_rounds; flags })
    end
    else if tag = tag_welcome then begin
      let n = Wire.get_bigint r in
      let key_bits = Wire.get_u32 r in
      let series_length = Wire.get_u32 r in
      let dimension = Wire.get_u32 r in
      let max_value = Wire.get_u32 r in
      let flags, resume_token =
        if Wire.remaining r > 0 then
          let flags = Wire.get_u8 r in
          (flags, Wire.get_bytes r)
        else (0, "")
      in
      Reply (Welcome { n; key_bits; series_length; dimension; max_value; flags; resume_token })
    end
    else if tag = tag_phase1_reply then begin
      let count = Wire.get_u32 r in
      if count * 12 > String.length s then
        raise (Wire.Malformed "phase1 element count exceeds frame capacity");
      let elements =
        Array.init count (fun _ ->
            let sum_sq = Wire.get_bigint r in
            let coords = Wire.get_bigint_array r in
            { sum_sq; coords })
      in
      Reply (Phase1_reply elements)
    end
    else if tag = tag_cipher_reply then Reply (Cipher_reply (Wire.get_bigint r))
    else if tag = tag_reveal_reply then Reply (Reveal_reply (Wire.get_bigint r))
    else if tag = tag_catalog_reply then begin
      let count = Wire.get_u32 r in
      if count * 4 > String.length s then
        raise (Wire.Malformed "catalog count exceeds frame capacity");
      Reply (Catalog_reply (Array.init count (fun _ -> Wire.get_u32 r)))
    end
    else if tag = tag_select_ack then Reply (Select_ack (Wire.get_u32 r))
    else if tag = tag_batch_cipher_reply then
      Reply (Batch_cipher_reply (Wire.get_bigint_array r))
    else if tag = tag_bye_ack then
      Reply (Bye_ack { server_seconds = Wire.get_f64 r })
    else if tag = tag_stats_reply then Reply (Stats_reply (Wire.get_bytes r))
    else if tag = tag_metrics_reply then Reply (Metrics_reply (Wire.get_bytes r))
    else if tag = tag_busy then Reply (Busy { retry_after_s = Wire.get_f64 r })
    else if tag = tag_resume_ack then begin
      let server_rounds = Wire.get_u32 r in
      let reply = Wire.get_bytes r in
      let flags = Wire.get_u8 r in
      Reply (Resume_ack { server_rounds; reply; flags })
    end
    else if tag = tag_resume_reject then
      Reply (Resume_reject { reason = Wire.get_bytes r })
    else if tag = tag_quota_exceeded then begin
      let quota = Wire.get_bytes r in
      let limit = Wire.get_u32 r in
      let requested = Wire.get_u32 r in
      Reply (Quota_exceeded { quota; limit; requested })
    end
    else if tag = tag_health_reply then begin
      let status = Wire.get_u8 r in
      let active = Wire.get_u32 r in
      let capacity = Wire.get_u32 r in
      let retry_after_s = Wire.get_f64 r in
      Reply (Health_reply { status; active; capacity; retry_after_s })
    end
    else if tag = tag_catalog_list_reply then begin
      let count = Wire.get_u32 r in
      if count * 5 > String.length s then
        raise (Wire.Malformed "catalog-list count exceeds frame capacity");
      let ids = Array.init count (fun _ -> Wire.get_bytes r) in
      let lengths = Array.init count (fun _ -> Wire.get_u32 r) in
      Reply (Catalog_list_reply { ids; lengths })
    end
    else if tag = tag_query_sketch then begin
      let count = Wire.get_u32 r in
      if count * 8 > String.length s then
        raise (Wire.Malformed "sketch count exceeds frame capacity");
      let sketches =
        Array.init count (fun _ ->
            let lo = Wire.get_bigint_array r in
            let hi = Wire.get_bigint_array r in
            { lo; hi })
      in
      Reply (Query_sketch sketches)
    end
    else if tag = tag_verdict_reply then begin
      let count = Wire.get_u32 r in
      if count > String.length s then
        raise (Wire.Malformed "verdict count exceeds frame capacity");
      Reply (Verdict_reply (Array.init count (fun _ -> Wire.get_u8 r <> 0)))
    end
    else if tag = tag_error_reply then Reply (Error_reply (Wire.get_bytes r))
    else raise (Wire.Malformed (Printf.sprintf "unknown message tag 0x%02x" tag))
  in
  Wire.expect_end r;
  msg

let describe = function
  | Request (Hello { flags; spec }) -> (
    match spec with
    | None ->
      if flags = 0 then "hello" else Printf.sprintf "hello(flags=0x%02x)" flags
    | Some { series_len; dimension } ->
      Printf.sprintf "hello(flags=0x%02x, m=%d, d=%d)"
        (flags lor flag_spec) series_len dimension)
  | Request Phase1_request -> "phase1-request"
  | Request (Min_request c) -> Printf.sprintf "min-request(%d candidates)" (Array.length c)
  | Request (Max_request c) -> Printf.sprintf "max-request(%d candidates)" (Array.length c)
  | Request (Reveal_request _) -> "reveal-request"
  | Request Catalog_request -> "catalog-request"
  | Request (Select_request i) -> Printf.sprintf "select-request(%d)" i
  | Request (Batch_min_request sets) ->
    Printf.sprintf "batch-min-request(%d sets)" (Array.length sets)
  | Request (Batch_max_request sets) ->
    Printf.sprintf "batch-max-request(%d sets)" (Array.length sets)
  | Request (Packed_min_request { slot_bits; counts; packed }) ->
    Printf.sprintf "packed-min-request(%d instances, %d ciphertexts, %d-bit slots)"
      (Array.length counts) (Array.length packed) slot_bits
  | Request (Packed_max_request { slot_bits; counts; packed }) ->
    Printf.sprintf "packed-max-request(%d instances, %d ciphertexts, %d-bit slots)"
      (Array.length counts) (Array.length packed) slot_bits
  | Request Stats_req -> "stats-request"
  | Request Health_req -> "health-request"
  | Request Catalog_list_request -> "catalog-list-request"
  | Request (Query_submit { segments; band; indices }) ->
    Printf.sprintf "query-submit(%d candidates, %d segments, band=%s)"
      (Array.length indices) segments
      (match band with None -> "none" | Some b -> string_of_int b)
  | Request (Verdict_request blinded) ->
    Printf.sprintf "verdict-request(%d candidates)" (Array.length blinded)
  | Request Metrics_req -> "metrics-request"
  | Request Bye -> "bye"
  | Request (Resume { client_rounds; flags; _ }) ->
    Printf.sprintf "resume(acked=%d, flags=0x%02x)" client_rounds flags
  | Reply (Welcome w) ->
    Printf.sprintf "welcome(bits=%d, length=%d, dim=%d)" w.key_bits w.series_length
      w.dimension
  | Reply (Phase1_reply e) -> Printf.sprintf "phase1-reply(%d elements)" (Array.length e)
  | Reply (Cipher_reply _) -> "cipher-reply"
  | Reply (Reveal_reply _) -> "reveal-reply"
  | Reply (Catalog_reply l) -> Printf.sprintf "catalog-reply(%d records)" (Array.length l)
  | Reply (Select_ack i) -> Printf.sprintf "select-ack(%d)" i
  | Reply (Batch_cipher_reply replies) ->
    Printf.sprintf "batch-cipher-reply(%d)" (Array.length replies)
  | Reply (Bye_ack { server_seconds }) ->
    Printf.sprintf "bye-ack(server=%.3fs)" server_seconds
  | Reply (Stats_reply text) ->
    Printf.sprintf "stats-reply(%d bytes)" (String.length text)
  | Reply (Busy { retry_after_s }) ->
    Printf.sprintf "busy(retry-after=%.1fs)" retry_after_s
  | Reply (Error_reply m) -> Printf.sprintf "error(%s)" m
  | Reply (Resume_ack { server_rounds; reply; flags }) ->
    Printf.sprintf "resume-ack(server=%d, replay=%dB, flags=0x%02x)"
      server_rounds (String.length reply) flags
  | Reply (Resume_reject { reason }) -> Printf.sprintf "resume-reject(%s)" reason
  | Reply (Quota_exceeded { quota; limit; requested }) ->
    Printf.sprintf "quota-exceeded(%s: %d > %d)" quota requested limit
  | Reply (Health_reply { status; active; capacity; retry_after_s }) ->
    Printf.sprintf "health-reply(status=%d, active=%d/%d, retry-after=%.1fs)"
      status active capacity retry_after_s
  | Reply (Catalog_list_reply { ids; _ }) ->
    Printf.sprintf "catalog-list-reply(%d records)" (Array.length ids)
  | Reply (Query_sketch sketches) ->
    Printf.sprintf "query-sketch(%d candidates)" (Array.length sketches)
  | Reply (Verdict_reply survive) ->
    Printf.sprintf "verdict-reply(%d candidates)" (Array.length survive)
  | Reply (Metrics_reply text) ->
    Printf.sprintf "metrics-reply(%d bytes)" (String.length text)

let values_in = function
  | Request (Hello _) | Request Phase1_request | Request Bye | Request Stats_req
  | Request Health_req | Request Catalog_list_request | Request (Query_submit _)
  | Request Catalog_request | Request (Select_request _) | Request (Resume _)
  | Request Metrics_req -> 0
  | Request (Verdict_request blinded) -> Array.length blinded
  | Request (Min_request c) | Request (Max_request c) -> Array.length c
  | Request (Batch_min_request sets) | Request (Batch_max_request sets) ->
    Array.fold_left (fun acc set -> acc + Array.length set) 0 sets
  | Request (Packed_min_request { packed; _ }) | Request (Packed_max_request { packed; _ }) ->
    Array.length packed
  | Request (Reveal_request _) -> 1
  | Reply (Welcome _) | Reply (Bye_ack _) | Reply (Busy _) | Reply (Error_reply _)
  | Reply (Catalog_reply _) | Reply (Select_ack _) | Reply (Stats_reply _)
  | Reply (Resume_ack _) | Reply (Resume_reject _)
  | Reply (Quota_exceeded _) | Reply (Health_reply _)
  | Reply (Catalog_list_reply _) | Reply (Verdict_reply _)
  | Reply (Metrics_reply _) -> 0
  | Reply (Query_sketch sketches) ->
    Array.fold_left
      (fun acc { lo; hi } -> acc + Array.length lo + Array.length hi)
      0 sketches
  | Reply (Phase1_reply elements) ->
    Array.fold_left (fun acc e -> acc + 1 + Array.length e.coords) 0 elements
  | Reply (Cipher_reply _) | Reply (Reveal_reply _) -> 1
  | Reply (Batch_cipher_reply replies) -> Array.length replies
