(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Fast enough to sit in the frame path: one table lookup per byte is
   noise next to a Paillier ciphertext's modular exponentiations. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.update: range outside the string";
  let table = Lazy.force table in
  let c = ref (Int32.lognot (Int32.of_int crc)) in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.to_int (Int32.logand (Int32.lognot !c) 0xFFFFFFFFl) land 0xFFFFFFFF

let digest s = update 0 s 0 (String.length s)
