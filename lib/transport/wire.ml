exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

type writer = Buffer.t

let writer () = Buffer.create 256

let put_u8 w v =
  if v < 0 || v > 0xFF then invalid_arg "Wire.put_u8: out of range";
  Buffer.add_char w (Char.chr v)

let put_u32 w v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.put_u32: out of range";
  Buffer.add_char w (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char w (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char w (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char w (Char.chr (v land 0xFF))

let put_bytes w s =
  put_u32 w (String.length s);
  Buffer.add_string w s

(* IEEE-754 double as 8 big-endian bytes (its Int64 bit pattern). *)
let put_f64 w v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    Buffer.add_char w
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let put_bigint w v =
  let open Ppst_bigint in
  let sign_byte =
    match Bigint.sign v with 0 -> 0 | 1 -> 1 | _ -> 2
  in
  put_u8 w sign_byte;
  put_bytes w (Bigint.to_bytes_be v)

let put_bigint_array w arr =
  put_u32 w (Array.length arr);
  Array.iter (put_bigint w) arr

let contents = Buffer.contents

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let need r n =
  if r.pos + n > String.length r.data then
    malformed "truncated frame: need %d bytes at offset %d of %d" n r.pos
      (String.length r.data)

let get_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let b i = Char.code r.data.[r.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  v

let get_f64 r =
  need r 8;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code r.data.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !bits

let get_bytes r =
  let len = get_u32 r in
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let get_bigint r =
  let open Ppst_bigint in
  let sign_byte = get_u8 r in
  let mag = Bigint.of_bytes_be (get_bytes r) in
  match sign_byte with
  | 0 ->
    if not (Bigint.is_zero mag) then malformed "zero sign with non-zero magnitude";
    Bigint.zero
  | 1 ->
    if Bigint.is_zero mag then malformed "positive sign with zero magnitude";
    mag
  | 2 ->
    if Bigint.is_zero mag then malformed "negative sign with zero magnitude";
    Bigint.neg mag
  | b -> malformed "bad sign byte %d" b

let get_bigint_array r =
  let n = get_u32 r in
  (* Cap pre-allocation by what the frame could possibly hold (each entry
     is at least 6 bytes) so a forged count cannot trigger a huge alloc. *)
  if n * 6 > String.length r.data - r.pos then
    malformed "array count %d exceeds frame capacity" n;
  Array.init n (fun _ -> get_bigint r)

let remaining r = String.length r.data - r.pos

let expect_end r =
  if remaining r <> 0 then malformed "%d trailing bytes in frame" (remaining r)
