(** Token-bucket rate limiter keyed by peer address.

    A connection-churning peer can starve the accept loop even when
    every individual session is cheap.  The limiter prices each new
    session at one token from that peer's bucket ([burst] capacity,
    [rate_per_s] refill); a drained bucket yields a [`Throttle] with
    the exact delay until the bucket recovers, which {!Server_loop}
    forwards as the [Busy] retry-after hint.

    The clock is injectable (same idiom as {!Resume_table}) so tests
    prove the refill math by advancing a fake clock.  Thread-safe. *)

type config = {
  rate_per_s : float;  (** steady-state admissions per second per peer *)
  burst : float;  (** bucket capacity: admissions allowed in a burst *)
}

type t

val create : ?now:(unit -> float) -> ?max_peers:int -> config -> t
(** [?now] defaults to the monotonic clock.  [?max_peers] (default
    4096) bounds the bucket table; at capacity the fullest bucket — the
    quietest peer's — is dropped.
    @raise Invalid_argument on non-positive rate, burst < 1 or
    max_peers < 1. *)

val admit : ?cost:float -> t -> string -> [ `Admit | `Throttle of float ]
(** Charge [cost] (default 1.0) tokens against [key]'s bucket.
    [`Throttle retry_after_s] reports the time until the bucket will
    hold [cost] tokens again. *)

val tokens : t -> string -> float
(** Current token balance for [key] (after refill); the full burst for
    a peer never seen. *)

val peers : t -> int
(** Number of tracked peer buckets. *)

val throttled_total : t -> int
(** Number of [`Throttle] verdicts issued over the limiter's life. *)
