(** Client-side view of the two-party link: a request/reply channel with
    full communication accounting.

    Two implementations:
    - {!local}: in-process, backed by a server-side handler function.
      Every message is still serialized and deserialized through the real
      wire format, so byte counts equal what a socket run would transfer;
      the handler's wall-clock time is accumulated separately, enabling
      per-party timing (paper Figures 6 and 10).
    - {!connect}/{!serve_once}: TCP over [Unix], with length-prefixed
      frames.  {!Server_loop} builds the concurrent multi-session server
      on the same frame primitives.

    Both constructors take the same optional arguments ([?config],
    [?trace]); a channel's frame cap is part of its {!config}, not
    process-global state. *)

exception Protocol_error of string
(** Raised on an [Error_reply] from the peer or a transport-level
    violation (unexpected reply kind, short read, ...). *)

exception Busy of { retry_after_s : float }
(** Raised by {!request} when the peer answers with [Message.Busy]: the
    server is at its concurrent-session capacity.  [retry_after_s] is
    the server's backoff hint. *)

exception Timeout
(** Raised by {!read_frame} when its [?deadline] passes before a full
    frame arrives. *)

(** {1 Per-channel configuration} *)

type config = {
  max_frame : int;
      (** Largest frame this channel will send or accept (bytes). *)
}

val config : ?max_frame:int -> unit -> config
(** Build a configuration; omitted fields take the process defaults
    ({!max_frame} for the frame cap).
    @raise Invalid_argument on a cap below 16 bytes. *)

val default_config : unit -> config
(** The configuration channels get when none is supplied: the current
    process-wide defaults. *)

type t

val request : t -> Message.request -> Message.reply
(** One round trip.  Accounting is updated on both directions.
    @raise Protocol_error when the peer signals an error.
    @raise Busy when the peer rejects the session at capacity. *)

val stats : t -> Stats.t

val trace : t -> Trace.t option

val server_seconds : t -> float
(** Wall-clock time spent inside the server handler.

    {e Local channels} accumulate it live: after every {!request} the
    value includes that request's handler time.

    {e TCP channels} cannot observe the remote handler directly, so the
    value stays [0.] during the session and becomes the server-measured
    total when {!close} receives the final accounting reply
    ([Bye_ack { server_seconds }] from the server).  Read it after
    [close]; per-phase attribution is not available remotely. *)

val close : t -> unit
(** Sends [Bye] (best-effort) and releases resources. *)

(** {1 In-process} *)

val local : ?config:config -> ?trace:Trace.t -> (Message.request -> Message.reply) -> t
(** [?config] applies the per-channel frame cap to the encoded messages
    (byte parity with a socket run includes the cap); [?trace] records
    every request/reply pair's byte sizes for {!Netsim} replay. *)

(** {1 TCP} *)

val connect :
  ?config:config -> ?trace:Trace.t -> host:string -> port:int -> unit -> t
(** Same optional arguments as {!local} (constructor symmetry): the
    channel's frame cap comes from [?config], and [?trace] records
    per-round sizes exactly as in-process channels do.  (The trailing
    [unit] lets the optional arguments default.)
    @raise Unix.Unix_error on connection failure. *)

val serve_once :
  ?config:config ->
  port:int ->
  handler:(Message.request -> Message.reply) ->
  unit ->
  unit
(** Accept a single connection on [port] and answer requests until [Bye]
    or EOF.  Handler wall-clock time is measured per request and the
    session total is shipped back in the final
    [Bye_ack { server_seconds }], so a remote client's accounting can
    include server cost (see {!server_seconds}).  Handler exceptions are
    converted to [Error_reply] frames, keeping the server alive.  For a
    persistent, concurrent server use {!Server_loop}. *)

(** {1 Frame I/O (exposed for {!Server_loop}, the server binary and tests)} *)

val write_frame : ?max_frame:int -> Unix.file_descr -> string -> unit

val read_frame : ?max_frame:int -> ?deadline:float -> Unix.file_descr -> string option
(** [None] on clean EOF.  [?max_frame] overrides the process-wide cap
    for this read; [?deadline] is an {e absolute} instant on
    {!Monoclock.now}'s timescale after which the read gives up.
    @raise Protocol_error on truncated frames or oversized lengths.
    @raise Timeout when [deadline] passes mid-read. *)

val setup_sigpipe : unit -> unit
(** Set SIGPIPE to ignore (idempotent), so a write to a peer-reset
    socket surfaces as [EPIPE] instead of killing the process.  Forced
    automatically by {!connect}, {!serve_once} and
    {!Server_loop.create}; exposed for callers doing raw frame I/O. *)

val retry_on_intr : (unit -> 'a) -> 'a
(** Run a syscall thunk, retrying on [EINTR] (signal mid-syscall) and
    [EAGAIN]/[EWOULDBLOCK] (spurious wakeup on a blocking socket).  All
    frame I/O goes through this; exposed for tests. *)

val max_frame : unit -> int
(** Process-wide {e default} frame cap (256 MiB initially): used by
    {!write_frame}/{!read_frame} when no explicit cap is given and by
    channels created without a [config]. *)

val set_max_frame : int -> unit
(** Override the process-wide default cap.  Prefer per-channel
    {!config}; this remains for callers that genuinely want to change
    the default for every subsequently created channel.
    @raise Invalid_argument below 16 bytes. *)
