(** Client-side view of the two-party link: a request/reply channel with
    full communication accounting.

    Two implementations:
    - {!local}: in-process, backed by a server-side handler function.
      Every message is still serialized and deserialized through the real
      wire format, so byte counts equal what a socket run would transfer;
      the handler's wall-clock time is accumulated separately, enabling
      per-party timing (paper Figures 6 and 10).
    - {!connect}/{!serve_once}: TCP over [Unix], with length-prefixed
      frames.  {!Server_loop} builds the concurrent multi-session server
      on the same frame primitives.

    Both constructors take the same optional arguments ([?config],
    [?trace]); a channel's frame cap is part of its {!config}, not
    process-global state. *)

exception Protocol_error of string
(** Raised on an [Error_reply] from the peer or a transport-level
    violation (unexpected reply kind, short read, ...). *)

exception Busy of { retry_after_s : float }
(** Raised by {!request} when the peer answers with [Message.Busy]: the
    server is at its concurrent-session capacity.  [retry_after_s] is
    the server's backoff hint. *)

exception Timeout
(** Raised by {!read_frame} when its [?deadline] passes before a full
    frame arrives. *)

exception Stalled
(** Raised by {!read_frame} when a frame {e in progress} stops making
    byte-level progress for longer than [?progress_timeout_s] — the
    slow-peer watchdog.  Distinct from {!Timeout} (absolute session
    deadline): a stall means the peer is actively trickling or has
    wedged mid-frame, the slowloris shape that would otherwise hold a
    session slot indefinitely on servers with no idle timeout. *)

exception Connection_lost of string
(** The peer (or the network) is gone: EOF mid-frame, [EPIPE],
    [ECONNRESET], [ETIMEDOUT] and friends — previously these leaked as
    raw [Unix.Unix_error] and bypassed accounting.  On a resumable
    channel {!request} recovers from this transparently (reconnect +
    [Resume]); it only escapes when the session has no resume token or
    recovery itself exhausted its retry budget. *)

exception Frame_corrupt of string
(** A frame failed its negotiated CRC-32 integrity check.  The payload
    is never handed to the codec (garbage must not reach
    [Paillier.decrypt]); on a resumable channel the same reconnect +
    resume path as {!Connection_lost} applies. *)

exception Resume_rejected of string
(** The server answered [Resume] with [Resume_reject]: the token is
    unknown, expired or evicted.  The session is unrecoverable; start
    over from [Hello].  When {!is_server_restarted} holds on the
    reason, the {e whole server} restarted (the token's boot-id prefix
    names a dead incarnation) and the channel fails fast instead of
    burning the retry budget — no later attempt can ever succeed. *)

val server_restarted_reason : string
(** The reason prefix a restarted server puts in [Resume_reject] when
    the presented token was minted by a previous incarnation. *)

val is_server_restarted : string -> bool
(** Whether a {!Resume_rejected} reason carries the
    {!server_restarted_reason} prefix. *)

exception Quota_exceeded of { quota : string; limit : int; requested : int }
(** The server rejected a request at admission control
    ([Message.Quota_exceeded]): it would exceed the per-session budget
    named [quota].  Not retryable — the same request will always be
    rejected; shrink the request or negotiate a bigger budget out of
    band.  All three fields are public quantities (SECURITY.md). *)

(** {1 Per-channel configuration} *)

type config = {
  max_frame : int;
      (** Largest frame this channel will send or accept (bytes). *)
}

val config : ?max_frame:int -> unit -> config
(** Build a configuration; omitted fields take the process defaults
    ({!max_frame} for the frame cap).
    @raise Invalid_argument on a cap below 16 bytes. *)

val default_config : unit -> config
(** The configuration channels get when none is supplied: the current
    process-wide defaults. *)

type t

val request : t -> Message.request -> Message.reply
(** One {e logical} round trip.  Accounting is updated on both
    directions.  On a TCP channel with a resume token, a mid-round
    {!Connection_lost}/{!Frame_corrupt} triggers transparent recovery:
    reconnect under the retry policy, present the token, and either
    consume the replayed reply (the server was ahead — the round is
    never executed twice) or re-send the request.  Protocol drivers
    above this call need no fault handling of their own.
    @raise Protocol_error when the peer signals an error.
    @raise Busy when the peer rejects the session at capacity.
    @raise Connection_lost when the link died and could not be resumed.
    @raise Frame_corrupt on an unrecoverable integrity failure.
    @raise Resume_rejected when the server refused the resume token.
    @raise Quota_exceeded when the server rejects at admission control. *)

val stats : t -> Stats.t

val trace : t -> Trace.t option

val budget : t -> Retry.Budget.t option
(** The wall budget currently governing this channel, if any. *)

val set_budget : t -> Retry.Budget.t option -> unit
(** Install (or clear) the operation budget.  While set, {!request}
    checks it before every round (raising [Retry.Budget.Exceeded] when
    expired), maps its deadline onto the frame-read deadline on TCP
    channels, and threads it through the reconnect/resume retries so no
    recovery path outlives it.  Callers running many sub-operations on
    one channel (e.g. per-candidate sub-deadlines in a catalog query)
    swap sub-budgets in and out here. *)

val server_seconds : t -> float
(** Wall-clock time spent inside the server handler.

    {e Local channels} accumulate it live: after every {!request} the
    value includes that request's handler time.

    {e TCP channels} cannot observe the remote handler directly, so the
    value stays [0.] during the session and becomes the server-measured
    total when {!close} receives the final accounting reply
    ([Bye_ack { server_seconds }] from the server).  Read it after
    [close]; per-phase attribution is not available remotely. *)

val close : t -> unit
(** Sends [Bye] (best-effort) and releases resources. *)

(** {1 In-process} *)

val local : ?config:config -> ?trace:Trace.t -> (Message.request -> Message.reply) -> t
(** [?config] applies the per-channel frame cap to the encoded messages
    (byte parity with a socket run includes the cap); [?trace] records
    every request/reply pair's byte sizes for {!Netsim} replay. *)

(** {1 TCP} *)

val connect :
  ?config:config ->
  ?trace:Trace.t ->
  ?crc:bool ->
  ?resume:bool ->
  ?retry:Retry.policy ->
  ?rng:Ppst_rng.Secure_rng.t ->
  ?sleep:(float -> unit) ->
  ?budget:Retry.Budget.t ->
  ?faults:Faults.t ->
  host:string ->
  port:int ->
  unit ->
  t
(** [?config]/[?trace] as in {!local}.  [?crc] (default [true]) and
    [?resume] (default [true]) choose the capability bits {e offered} in
    [Hello]; what is actually in force is the server's grant, observed
    on the [Welcome] reply (an old server simply grants nothing and the
    session runs exactly as before this PR).  [?retry] makes the initial
    TCP connect retry per the policy (single attempt when omitted) and
    is also the policy for mid-session resume (which defaults to
    {!Retry.default_policy}); [?rng] (jitter) and [?sleep] are
    injectable for deterministic tests.  [?budget] is the end-to-end
    wall budget for the whole operation: it bounds the initial connect
    retries, every subsequent round and every reconnect+resume recovery
    (see {!set_budget}).  [?faults] installs a deterministic fault
    injector in this channel's frame path — chaos testing; never set in
    production.
    @raise Unix.Unix_error on connection failure.
    @raise Retry.Budget.Exceeded when [?budget] expires during the
    initial connect retries. *)

val offered_flags : t -> int
(** The capability bits this channel offers in [Hello]
    ({!Message.flag_crc32} / {!Message.flag_resume}); [0] for local
    channels. *)

val negotiated_flags : t -> int
(** The server's grant, [0] until the [Welcome] reply has been seen. *)

val resume_token : t -> string option
(** The live resume token, once granted. *)

val serve_once :
  ?config:config ->
  port:int ->
  handler:(Message.request -> Message.reply) ->
  unit ->
  unit
(** Accept a single connection on [port] and answer requests until [Bye]
    or EOF.  Handler wall-clock time is measured per request and the
    session total is shipped back in the final
    [Bye_ack { server_seconds }], so a remote client's accounting can
    include server cost (see {!server_seconds}).  Handler exceptions are
    converted to [Error_reply] frames, keeping the server alive.  For a
    persistent, concurrent server use {!Server_loop}. *)

(** {1 Frame I/O (exposed for {!Server_loop}, the server binary and tests)} *)

val write_frame :
  ?max_frame:int -> ?crc:bool -> ?faults:Faults.t -> Unix.file_descr -> string -> unit
(** [?crc] appends a CRC-32 trailer (and covers it with the length
    header); [?faults] consults the injector before the write.
    @raise Protocol_error when the payload exceeds the cap.
    @raise Connection_lost on a connection-class [Unix] error (or an
    injected drop). *)

val read_frame :
  ?max_frame:int ->
  ?deadline:float ->
  ?progress_timeout_s:float ->
  ?crc:bool ->
  ?faults:Faults.t ->
  Unix.file_descr ->
  string option
(** [None] on clean EOF.  [?max_frame] overrides the process-wide cap
    for this read; [?deadline] is an {e absolute} instant on
    {!Monoclock.now}'s timescale after which the read gives up.
    [?progress_timeout_s] is the slow-peer watchdog: once the first
    byte of the frame has arrived, every subsequent chunk must land
    within that many seconds of the previous one (a connection sitting
    quietly {e between} frames is not affected — that is the idle
    policy's job).  With [?crc] the trailer is verified and stripped
    before the payload is returned.
    @raise Protocol_error on oversized lengths.
    @raise Connection_lost on EOF mid-frame or a connection-class error.
    @raise Frame_corrupt on a CRC mismatch.
    @raise Timeout when [deadline] passes mid-read.
    @raise Stalled when byte-level progress stops mid-frame. *)

val setup_sigpipe : unit -> unit
(** Set SIGPIPE to ignore (idempotent), so a write to a peer-reset
    socket surfaces as [EPIPE] instead of killing the process.  Forced
    automatically by {!connect}, {!serve_once} and
    {!Server_loop.create}; exposed for callers doing raw frame I/O. *)

val retry_on_intr : (unit -> 'a) -> 'a
(** Run a syscall thunk, retrying on [EINTR] (signal mid-syscall) and
    [EAGAIN]/[EWOULDBLOCK] (spurious wakeup on a blocking socket).  All
    frame I/O goes through this; exposed for tests. *)

val max_frame : unit -> int
(** Process-wide {e default} frame cap (256 MiB initially): used by
    {!write_frame}/{!read_frame} when no explicit cap is given and by
    channels created without a [config]. *)

val set_max_frame : int -> unit
(** Override the process-wide default cap.  Prefer per-channel
    {!config}; this remains for callers that genuinely want to change
    the default for every subsequently created channel.
    @raise Invalid_argument below 16 bytes. *)
