(** Client-side view of the two-party link: a request/reply channel with
    full communication accounting.

    Two implementations:
    - {!local}: in-process, backed by a server-side handler function.
      Every message is still serialized and deserialized through the real
      wire format, so byte counts equal what a socket run would transfer;
      the handler's wall-clock time is accumulated separately, enabling
      per-party timing (paper Figures 6 and 10).
    - {!connect}/{!serve}: TCP over [Unix], with length-prefixed frames. *)

exception Protocol_error of string
(** Raised on an [Error_reply] from the peer or a transport-level
    violation (unexpected reply kind, short read, ...). *)

type t

val request : t -> Message.request -> Message.reply
(** One round trip.  Accounting is updated on both directions.
    @raise Protocol_error when the peer signals an error. *)

val stats : t -> Stats.t

val trace : t -> Trace.t option

val server_seconds : t -> float
(** Wall-clock time spent inside the server handler.

    {e Local channels} accumulate it live: after every {!request} the
    value includes that request's handler time.

    {e TCP channels} cannot observe the remote handler directly, so the
    value stays [0.] during the session and becomes the server-measured
    total when {!close} receives the final accounting reply
    ([Bye_ack { server_seconds }] from {!serve_once}).  Read it after
    [close]; per-phase attribution is not available remotely. *)

val close : t -> unit
(** Sends [Bye] (best-effort) and releases resources. *)

(** {1 In-process} *)

val local : ?trace:Trace.t -> (Message.request -> Message.reply) -> t
(** [?trace] records every request/reply pair's byte sizes for
    {!Netsim} replay. *)

(** {1 TCP} *)

val connect : host:string -> port:int -> t
(** @raise Unix.Unix_error on connection failure. *)

val serve_once :
  port:int -> handler:(Message.request -> Message.reply) -> unit
(** Accept a single connection on [port] and answer requests until [Bye]
    or EOF.  Handler wall-clock time is measured per request and the
    session total is shipped back in the final
    [Bye_ack { server_seconds }], so a remote client's accounting can
    include server cost (see {!server_seconds}).  Handler exceptions are
    converted to [Error_reply] frames, keeping the server alive. *)

(** {1 Frame I/O (exposed for the server binary and tests)} *)

val write_frame : Unix.file_descr -> string -> unit
val read_frame : Unix.file_descr -> string option
(** [None] on clean EOF.
    @raise Protocol_error on truncated frames or oversized lengths. *)

val retry_on_intr : (unit -> 'a) -> 'a
(** Run a syscall thunk, retrying on [EINTR] (signal mid-syscall) and
    [EAGAIN]/[EWOULDBLOCK] (spurious wakeup on a blocking socket).  All
    frame I/O goes through this; exposed for tests. *)

val max_frame : unit -> int
(** Current frame-size cap (default 256 MiB): both the largest payload
    {!write_frame} will send and the largest length header
    {!read_frame} will accept. *)

val set_max_frame : int -> unit
(** Override the cap (process-wide; tests shrink it to exercise the
    limit without huge allocations).
    @raise Invalid_argument below 16 bytes. *)
