(** Per-round message traces.

    @deprecated Subsumed by [Ppst_telemetry]: {!Channel.request} now
    records every round into the process metrics registry and, at Debug,
    emits a ["channel.round"] telemetry point with opcode, sizes and
    latency — strictly more than a [Trace] entry.  This module remains
    for one release because {!Netsim.replay} consumes its in-memory
    entries; new callers should read a [--trace-out] JSONL file through
    [Ppst_telemetry.Trace_reader] instead.

    A trace records the byte size of every request/reply pair that crossed
    a channel, in order.  {!Netsim} replays a trace against a network
    model to predict wall-clock time on links the benchmark machine does
    not have — the paper measured on localhost only, and the value of
    round-trip reductions (wavefront batching) only shows under real
    latency. *)

type entry = { request_bytes : int; reply_bytes : int }

type t

val create : unit -> t
val record : t -> request_bytes:int -> reply_bytes:int -> unit
val entries : t -> entry list
(** In transmission order. *)

val rounds : t -> int
val total_bytes : t -> int
