/* SCM_RIGHTS file-descriptor passing over a Unix-domain socketpair.
 *
 * The stdlib Unix module has no sendmsg/recvmsg binding, and fd passing
 * is the one ancillary-data feature the supervisor needs: the parent
 * dispatcher accepts TCP connections and ships the connected socket to
 * a worker process.  Both calls release the OCaml runtime lock while
 * blocking so a worker's session threads keep running during the
 * dispatcher read.  Errors surface as Unix.Unix_error (uerror), so the
 * existing EINTR retry wrappers apply unchanged.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <sys/types.h>
#include <sys/socket.h>
#include <string.h>
#include <errno.h>

CAMLprim value ppst_fd_passing_send(value vsock, value vfd)
{
  CAMLparam2(vsock, vfd);
  struct msghdr msg;
  struct iovec iov;
  union {
    struct cmsghdr hdr;
    char buf[CMSG_SPACE(sizeof(int))];
  } cmsg;
  struct cmsghdr *c;
  char byte = 'F';
  int sock = Int_val(vsock);
  int fd = Int_val(vfd);
  ssize_t ret;

  memset(&msg, 0, sizeof(msg));
  memset(&cmsg, 0, sizeof(cmsg));
  iov.iov_base = &byte;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cmsg.buf;
  msg.msg_controllen = CMSG_SPACE(sizeof(int));
  c = CMSG_FIRSTHDR(&msg);
  c->cmsg_level = SOL_SOCKET;
  c->cmsg_type = SCM_RIGHTS;
  c->cmsg_len = CMSG_LEN(sizeof(int));
  memcpy(CMSG_DATA(c), &fd, sizeof(int));

  caml_release_runtime_system();
  ret = sendmsg(sock, &msg, 0);
  caml_acquire_runtime_system();
  if (ret == -1) uerror("fd_passing_send", Nothing);
  CAMLreturn(Val_unit);
}

/* Returns the received fd, or -1 on orderly EOF (peer closed). */
CAMLprim value ppst_fd_passing_recv(value vsock)
{
  CAMLparam1(vsock);
  struct msghdr msg;
  struct iovec iov;
  union {
    struct cmsghdr hdr;
    char buf[CMSG_SPACE(sizeof(int))];
  } cmsg;
  struct cmsghdr *c;
  char byte;
  int sock = Int_val(vsock);
  int fd = -1;
  ssize_t ret;

  memset(&msg, 0, sizeof(msg));
  memset(&cmsg, 0, sizeof(cmsg));
  iov.iov_base = &byte;
  iov.iov_len = 1;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = cmsg.buf;
  msg.msg_controllen = CMSG_SPACE(sizeof(int));

  caml_release_runtime_system();
  ret = recvmsg(sock, &msg, 0);
  caml_acquire_runtime_system();
  if (ret == -1) uerror("fd_passing_recv", Nothing);
  if (ret == 0) CAMLreturn(Val_int(-1)); /* EOF */

  for (c = CMSG_FIRSTHDR(&msg); c != NULL; c = CMSG_NXTHDR(&msg, c)) {
    if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SCM_RIGHTS) {
      memcpy(&fd, CMSG_DATA(c), sizeof(int));
      break;
    }
  }
  if (fd == -1) {
    /* a data byte without ancillary payload: protocol violation */
    errno = EPROTO;
    uerror("fd_passing_recv", Nothing);
  }
  CAMLreturn(Val_int(fd));
}
