exception Protocol_error of string
exception Busy of { retry_after_s : float }
exception Timeout
exception Stalled
exception Connection_lost of string
exception Frame_corrupt of string
exception Resume_rejected of string
exception Quota_exceeded of { quota : string; limit : int; requested : int }

module Telemetry = Ppst_telemetry.Telemetry
module Metrics = Ppst_telemetry.Metrics

(* Per-round observability (subsumes the deprecated Trace module): every
   request/reply pair updates these process-wide metrics and, at Debug,
   emits a "channel.round" point with opcode/sizes/latency — the record
   ppst_analyze's trace table aggregates. *)
let m_frame_bytes =
  Metrics.histogram
    ~buckets:[| 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144.; 1048576. |]
    "transport.frame.bytes"

let m_round_latency =
  Metrics.histogram
    ~buckets:[| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.; 3. |]
    "transport.round.latency_s"

let m_rounds = Metrics.counter "transport.rounds"

(* Fault-tolerance counters: how often the transport had to recover. *)
let m_connection_lost = Metrics.counter "transport.connection.lost"
let m_crc_failures = Metrics.counter "transport.crc.failures"
let m_resume_attempts = Metrics.counter "transport.resume.attempts"
let m_resume_ok = Metrics.counter "transport.resume.ok"
let m_resume_replayed = Metrics.counter "transport.resume.replayed"

let record_round_telemetry ~opcode ~request_bytes ~reply_bytes ~latency_s =
  Metrics.observe m_frame_bytes (float_of_int request_bytes);
  Metrics.observe m_frame_bytes (float_of_int reply_bytes);
  Metrics.observe m_round_latency latency_s;
  Metrics.incr m_rounds;
  Telemetry.event ~level:Telemetry.Debug ~name:"channel.round"
    ~attrs:
      [
        ("opcode", Telemetry.Opcode opcode);
        ("request_bytes", Telemetry.Size request_bytes);
        ("reply_bytes", Telemetry.Size reply_bytes);
        ("latency_s", Telemetry.Duration latency_s);
      ]
    ()

let protocol_error fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let conn_lost fmt =
  Printf.ksprintf
    (fun s ->
      Metrics.incr m_connection_lost;
      raise (Connection_lost s))
    fmt

let frame_corrupt fmt =
  Printf.ksprintf
    (fun s ->
      Metrics.incr m_crc_failures;
      raise (Frame_corrupt s))
    fmt

(* Frames on the wire: 4-byte big-endian length, then the message bytes.
   A hard cap guards against forged lengths.  The process-wide ref is
   only the default for channels created without an explicit [config];
   every channel carries its own cap (per-channel configuration). *)
let max_frame_cap = ref (256 * 1024 * 1024)

let max_frame () = !max_frame_cap

let check_cap n =
  if n < 16 then invalid_arg "Channel: frame cap below 16 bytes"

let set_max_frame n =
  check_cap n;
  max_frame_cap := n

type config = { max_frame : int }

let default_config () = { max_frame = !max_frame_cap }

let config ?max_frame () =
  match max_frame with
  | None -> default_config ()
  | Some n ->
    check_cap n;
    { max_frame = n }

(* Everything a dropped TCP connection needs to be re-established and
   the session resumed in place. *)
type reconnect = {
  host : string;
  port : int;
  offered : int;  (* capability bits re-offered in Hello / Resume *)
  retry : Retry.policy option;
  rng : Ppst_rng.Secure_rng.t;  (* backoff jitter *)
  sleep : float -> unit;
}

type tcp_state = {
  mutable fd : Unix.file_descr;
  reconnect : reconnect option;  (* None: raw fd, not reconnectable *)
  faults : Faults.t option;
  mutable crc : bool;  (* CRC-32 trailers active on this connection *)
  mutable granted : int;  (* flags the server granted *)
  mutable token : string;  (* resume token; "" = session not resumable *)
  mutable rounds : int;  (* reply frames fully received, errors included *)
}

type backend =
  | Local of (Message.request -> Message.reply)
  | Tcp of tcp_state

type t = {
  backend : backend;
  config : config;
  stats : Stats.t;
  trace : Trace.t option;
  (* Wall budget for the operation currently driving this channel:
     checked before every round, threaded into the reconnect/resume
     retries, and mapped onto the frame-read deadline.  Mutable so a
     caller (e.g. Query) can install per-candidate sub-budgets. *)
  mutable budget : Retry.Budget.t option;
  mutable server_seconds : float;
  mutable closed : bool;
}

let stats t = t.stats
let trace t = t.trace
let server_seconds t = t.server_seconds
let budget t = t.budget
let set_budget t b = t.budget <- b

(* The budget's absolute deadline, for read_frame.  Only meaningful when
   the budget runs on the monotonic clock (the default); a test-injected
   fake clock should drive local channels, which never read frames. *)
let budget_deadline t = Option.map Retry.Budget.deadline t.budget

let check_budget t =
  match t.budget with Some b -> Retry.Budget.check b | None -> ()

let offered_flags t =
  match t.backend with
  | Local _ -> 0
  | Tcp { reconnect = Some rc; _ } -> rc.offered
  | Tcp _ -> 0

let negotiated_flags t =
  match t.backend with Local _ -> 0 | Tcp st -> st.granted

let resume_token t =
  match t.backend with
  | Tcp { token; _ } when token <> "" -> Some token
  | _ -> None

(* A write to a peer-reset socket must surface as EPIPE (handled by the
   caller), not as a process-killing SIGPIPE — which is exactly what a
   client racing a server-side timeout close would otherwise get.
   Forced on every socket construction; a no-op where SIGPIPE does not
   exist. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let setup_sigpipe () = Lazy.force ignore_sigpipe

(* Retry a syscall interrupted by a signal (EINTR) — without this, any
   signal delivered mid-read kills the session with a spurious
   Protocol_error.  EAGAIN/EWOULDBLOCK are retried too: our sockets are
   blocking, so these only appear in rare kernel corner cases (e.g.
   after select wakeups) and mean "try again", never "give up". *)
let rec retry_on_intr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    retry_on_intr f

(* The connection-level errno class: the peer (or the network) is gone,
   which the fault-tolerant paths treat as recoverable.  Everything else
   (EBADF, EINVAL, ...) stays a raw Unix_error — those are local bugs,
   and retrying them would hide the bug. *)
let map_conn_errors f =
  try f ()
  with
  | Unix.Unix_error
      ( (( Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.ENETRESET
         | Unix.ENETDOWN | Unix.ENETUNREACH | Unix.ETIMEDOUT
         | Unix.EHOSTUNREACH | Unix.EHOSTDOWN | Unix.ENOTCONN
         | Unix.ESHUTDOWN ) as e),
        fn,
        _ ) ->
    conn_lost "%s: connection lost (%s)" fn (Unix.error_message e)

let drop_connection fd why =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  conn_lost "fault injection: %s" why

let put_u32_be b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 3) (Char.chr (v land 0xFF))

let write_frame ?max_frame:cap ?(crc = false) ?faults fd payload =
  let cap = match cap with Some c -> c | None -> !max_frame_cap in
  let payload_len = String.length payload in
  if payload_len > cap then protocol_error "frame too large: %d bytes" payload_len;
  (* With CRC negotiated, the body is payload ^ 4-byte big-endian CRC-32
     and the header length covers both.  Header and body still go out in
     one write: separate writes interact with Nagle + delayed ACK and
     add ~40 ms per round trip on loopback. *)
  let len = if crc then payload_len + 4 else payload_len in
  let frame = Bytes.create (4 + len) in
  put_u32_be frame 0 len;
  Bytes.blit_string payload 0 frame 4 payload_len;
  if crc then put_u32_be frame (4 + payload_len) (Crc32.digest payload);
  let total = 4 + len in
  let write_range first count =
    let rec go off remaining =
      if remaining > 0 then begin
        let n = retry_on_intr (fun () -> Unix.write fd frame off remaining) in
        go (off + n) (remaining - n)
      end
    in
    go first count
  in
  let action = match faults with None -> Faults.Pass | Some f -> Faults.next f in
  map_conn_errors (fun () ->
      match action with
      | Faults.Pass -> write_range 0 total
      | Faults.Drop -> drop_connection fd "connection dropped before send"
      | Faults.Corrupt k ->
        (* flip one bit of the body (trailer included), leaving the
           header intact: the frame arrives well-formed and the
           integrity check has to be the thing that catches it *)
        if len > 0 then begin
          let pos = 4 + (((k mod len) + len) mod len) in
          Bytes.set frame pos
            (Char.chr (Char.code (Bytes.get frame pos) lxor 0x20))
        end;
        write_range 0 total
      | Faults.Delay s ->
        Thread.delay s;
        write_range 0 total
      | Faults.Short_write ->
        write_range 0 (max 1 (total / 2));
        drop_connection fd "connection dropped mid-frame (short write)"
      | Faults.Duplicate ->
        write_range 0 total;
        write_range 0 total;
        drop_connection fd "connection dropped after duplicated frame"
      | Faults.Crash ->
        (* deterministic process death at this frame index — only
           meaningful inside a supervised worker (Supervisor restarts
           it and the session fails over via its spooled snapshot) *)
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        assert false
      | Faults.Crash_mid_write ->
        write_range 0 (max 1 (total / 2));
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        assert false)

(* Block until [fd] is readable or the absolute monotonic [deadline]
   passes.  Recomputes the remaining budget after every EINTR wakeup, so
   a signal storm cannot extend the deadline. *)
let wait_readable fd deadline =
  let rec go () =
    let remaining = deadline -. Monoclock.now () in
    if remaining <= 0.0 then raise Timeout;
    match Unix.select [ fd ] [] [] remaining with
    | [], _, _ -> raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* [?progress_timeout_s] is the slow-peer watchdog: every chunk of the
   read must arrive within that many seconds of the previous one, or the
   read fails with [Stalled].  This is a *progress* bound, deliberately
   distinct from the absolute [?deadline]: a peer trickling one byte per
   idle-timeout window satisfies any per-frame deadline reset yet never
   finishes a frame — the exact slowloris shape that holds a session
   slot forever on servers configured without an idle timeout.  With
   [~armed:false] the watchdog only starts ticking after the first byte
   lands, so a connection sitting quietly between frames is governed by
   the session's idle policy, not the watchdog. *)
let read_exactly ?deadline ?progress_timeout_s ?(armed = true) fd n =
  let buf = Bytes.create n in
  let progress_deadline_after_chunk () =
    match progress_timeout_s with
    | None -> None
    | Some s -> Some (Monoclock.now () +. s)
  in
  let rec go off progress_deadline =
    if off >= n then Some buf
    else begin
      (match (deadline, progress_deadline) with
       | None, None -> ()
       | d, p ->
         let eff =
           match (d, p) with
           | Some d, Some p -> Float.min d p
           | Some d, None -> d
           | None, Some p -> p
           | None, None -> assert false
         in
         (try wait_readable fd eff
          with Timeout ->
            (* which budget ran out?  the absolute deadline is session
               policy and wins the tie; only a pure progress expiry is a
               stall *)
            (match d with
             | Some d when d -. Monoclock.now () <= 0.0 -> raise Timeout
             | _ -> if p <> None then raise Stalled else raise Timeout)));
      match retry_on_intr (fun () -> Unix.read fd buf off (n - off)) with
      | 0 -> if off = 0 then None else conn_lost "connection lost (eof mid-frame)"
      | k -> go (off + k) (progress_deadline_after_chunk ())
    end
  in
  go 0 (if armed then progress_deadline_after_chunk () else None)

let get_u32_be s off =
  let b i = Char.code s.[off + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let read_frame ?max_frame:cap ?deadline ?progress_timeout_s ?(crc = false)
    ?faults fd =
  let cap = match cap with Some c -> c | None -> !max_frame_cap in
  let action = match faults with None -> Faults.Pass | Some f -> Faults.next f in
  (match action with
   | Faults.Drop | Faults.Short_write | Faults.Duplicate ->
     (* short-write and duplicate only make sense on the send side;
        degrade to a plain drop when the injector fires on a receive *)
     drop_connection fd "connection dropped before receive"
   | Faults.Delay s -> Thread.delay s
   | Faults.Crash | Faults.Crash_mid_write ->
     (* process death is process death whichever direction fired *)
     Unix.kill (Unix.getpid ()) Sys.sigkill
   | Faults.Pass | Faults.Corrupt _ -> ());
  map_conn_errors (fun () ->
      (* The watchdog arms on the header's first byte: a quiet connection
         between frames answers to the idle policy, but once a frame has
         started every subsequent chunk — header remainder and body —
         must keep arriving. *)
      match read_exactly ?deadline ?progress_timeout_s ~armed:false fd 4 with
      | None -> None
      | Some header ->
        let len = get_u32_be (Bytes.to_string header) 0 in
        if len > cap + (if crc then 4 else 0) then
          protocol_error "frame length %d exceeds cap" len;
        (match read_exactly ?deadline ?progress_timeout_s fd len with
         | None -> conn_lost "connection lost (eof in frame body)"
         | Some body ->
           (match action with
            | Faults.Corrupt k when len > 0 ->
              let pos = ((k mod len) + len) mod len in
              Bytes.set body pos
                (Char.chr (Char.code (Bytes.get body pos) lxor 0x20))
            | _ -> ());
           let body = Bytes.to_string body in
           if not crc then Some body
           else begin
             if len < 4 then
               frame_corrupt "frame shorter than its CRC-32 trailer";
             let payload = String.sub body 0 (len - 4) in
             let expected = get_u32_be body (len - 4) in
             let actual = Crc32.digest payload in
             if actual <> expected then
               frame_corrupt "CRC-32 mismatch on a %d-byte frame" (len - 4);
             Some payload
           end))

let decode_reply bytes_str =
  match Message.decode bytes_str with
  | Message.Reply r -> r
  | Message.Request _ -> protocol_error "peer sent a request where a reply was expected"
  | exception Wire.Malformed m -> protocol_error "malformed reply: %s" m

let check_not_closed t = if t.closed then protocol_error "channel is closed"

let tcp_socket_connect ~host ~port =
  let addr =
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for host " ^ host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close fd;
     raise e);
  fd

(* The reject reason a restarted server sends when a resume token's
   boot-id prefix names a previous server incarnation (Server_loop).
   Matched as a prefix so the server may append detail after it. *)
let server_restarted_reason = "server-restarted"

let is_server_restarted reason =
  String.length reason >= String.length server_restarted_reason
  && String.sub reason 0 (String.length server_restarted_reason)
     = server_restarted_reason

let retryable_connect_errno = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ETIMEDOUT | Unix.EHOSTUNREACH
  | Unix.ENETUNREACH | Unix.ENETDOWN | Unix.EADDRNOTAVAIL -> true
  | _ -> false

(* Reconnect and re-attach to the parked server-side session: one
   Resume round trip per attempt, under the channel's retry policy.
   Returns [`Replayed reply] when the server already processed the
   in-flight request (its reply travels inside the Resume_ack — the
   round is never executed twice), [`In_sync] when the caller should
   re-send.  The handshake frames deliberately bypass the fault
   injector and CRC: recovery must work under any chaos profile, and
   CRC state is renegotiated by the ack itself. *)
let resume_session t st =
  let rc =
    match st.reconnect with
    | Some rc -> rc
    | None -> conn_lost "connection lost and channel is not reconnectable"
  in
  let cap = t.config.max_frame in
  let policy = match rc.retry with Some p -> p | None -> Retry.default_policy in
  let attempt_once () =
    Metrics.incr m_resume_attempts;
    (try Unix.close st.fd with Unix.Unix_error _ -> ());
    st.fd <- tcp_socket_connect ~host:rc.host ~port:rc.port;
    st.crc <- false;
    let encoded =
      Message.encode
        (Message.Request
           (Message.Resume
              { token = st.token; client_rounds = st.rounds; flags = rc.offered }))
    in
    Stats.record_sent t.stats ~bytes:(String.length encoded) ~values:0;
    write_frame ~max_frame:cap st.fd encoded;
    match read_frame ~max_frame:cap ?deadline:(budget_deadline t) st.fd with
    | None -> conn_lost "connection lost during resume handshake"
    | Some frame ->
      Stats.record_received t.stats ~bytes:(String.length frame) ~values:0;
      (match decode_reply frame with
       | Message.Resume_ack { server_rounds; reply; flags } ->
         st.granted <- flags;
         st.crc <- flags land Message.flag_crc32 <> 0;
         Metrics.incr m_resume_ok;
         if server_rounds > st.rounds then begin
           (* the lost frame was the reply, not the request: consume the
              replayed copy and re-align the round counter *)
           if String.length reply = 0 then
             protocol_error
               "resume: server is %d round(s) ahead but sent no replay"
               (server_rounds - st.rounds);
           st.rounds <- server_rounds - 1;
           Metrics.incr m_resume_replayed;
           `Replayed reply
         end
         else if server_rounds = st.rounds then `In_sync
         else
           protocol_error "resume: server behind client (%d < %d rounds)"
             server_rounds st.rounds
       | Message.Resume_reject { reason } -> raise (Resume_rejected reason)
       | Message.Busy { retry_after_s } -> raise (Busy { retry_after_s })
       | Message.Error_reply m -> protocol_error "peer error during resume: %s" m
       | _ -> protocol_error "unexpected reply to resume")
  in
  Retry.with_retry ~policy ~rng:rc.rng ~sleep:rc.sleep ?budget:t.budget
    ~classify:(function
      | Connection_lost _ | Frame_corrupt _ -> `Retry
      (* a whole-server restart is terminal: the token's boot-id prefix
         can never match again, so burning the retry budget only delays
         the inevitable.  Fail fast with the typed reason intact. *)
      | Resume_rejected reason when is_server_restarted reason -> `Fail
      (* any other reject may be the park/reconnect race (the server
         thread has not parked the state yet): retry briefly before
         giving up *)
      | Resume_rejected _ -> `Retry
      | Busy { retry_after_s } -> `Retry_after retry_after_s
      | Unix.Unix_error (e, _, _) when retryable_connect_errno e -> `Retry
      | _ -> `Fail)
    attempt_once

let request t req =
  check_not_closed t;
  (* One whole-operation wall budget gates every round: an expired
     budget surfaces as the typed [Retry.Budget.Exceeded] before any
     further bytes move, on local and TCP backends alike. *)
  check_budget t;
  let cap = t.config.max_frame in
  let msg = Message.Request req in
  let encoded = Message.encode msg in
  let t0 = Telemetry.now () in
  Stats.record_sent t.stats ~bytes:(String.length encoded)
    ~values:(Message.values_in msg);
  let reply, reply_bytes =
    match t.backend with
    | Local handler ->
      (* Round-trip through the codec so byte accounting matches a socket
         run (the frame cap included), then time the server-side work
         separately. *)
      if String.length encoded > cap then
        protocol_error "frame too large: %d bytes" (String.length encoded);
      let decoded_req =
        match Message.decode encoded with
        | Message.Request r -> r
        | Message.Reply _ -> protocol_error "request decoded as reply"
      in
      let t0 = Unix.gettimeofday () in
      let reply =
        try handler decoded_req
        with e -> Message.Error_reply (Printexc.to_string e)
      in
      t.server_seconds <- t.server_seconds +. (Unix.gettimeofday () -. t0);
      let reply_encoded = Message.encode (Message.Reply reply) in
      if String.length reply_encoded > cap then
        protocol_error "frame length %d exceeds cap" (String.length reply_encoded);
      Stats.record_received t.stats ~bytes:(String.length reply_encoded)
        ~values:(Message.values_in (Message.Reply reply));
      (match t.trace with
       | Some tr ->
         Trace.record tr ~request_bytes:(String.length encoded)
           ~reply_bytes:(String.length reply_encoded)
       | None -> ());
      (decode_reply reply_encoded, String.length reply_encoded)
    | Tcp st ->
      (* One logical round, surviving connection loss: on a typed
         transport fault, reconnect + resume and either consume the
         replayed reply or re-send.  Consecutive failures of the same
         round are bounded so a drop-everything chaos profile degrades
         to a typed error instead of a livelock. *)
      let max_consecutive_failures =
        match st.reconnect with
        | Some { retry = Some p; _ } -> p.Retry.max_attempts
        | _ -> Retry.default_policy.Retry.max_attempts
      in
      let rec round failures =
        match
          write_frame ~max_frame:cap ~crc:st.crc ?faults:st.faults st.fd encoded;
          (match
             read_frame ~max_frame:cap ?deadline:(budget_deadline t)
               ~crc:st.crc ?faults:st.faults st.fd
           with
          | None -> conn_lost "connection closed by peer"
          | Some frame -> frame)
        with
        | frame -> frame
        | exception ((Connection_lost _ | Frame_corrupt _) as e) ->
          Stats.record_failure t.stats;
          if st.token = "" || failures + 1 >= max_consecutive_failures then
            raise e;
          (match resume_session t st with
           | `Replayed frame -> frame
           | `In_sync -> round (failures + 1))
      in
      let frame = round 0 in
      let reply = decode_reply frame in
      st.rounds <- st.rounds + 1;
      (* Capability negotiation: the server's grant rides in Welcome.
         CRC turns on only now — the Welcome frame itself is plain, the
         same on-wire order the server follows. *)
      (match (req, reply) with
       | Message.Hello _, Message.Welcome { flags; resume_token; _ } ->
         st.granted <- flags;
         st.crc <- flags land Message.flag_crc32 <> 0;
         st.token <-
           (if flags land Message.flag_resume <> 0 then resume_token else "")
       | _ -> ());
      Stats.record_received t.stats ~bytes:(String.length frame)
        ~values:(Message.values_in (Message.Reply reply));
      (match t.trace with
       | Some tr ->
         Trace.record tr ~request_bytes:(String.length encoded)
           ~reply_bytes:(String.length frame)
       | None -> ());
      (reply, String.length frame)
  in
  Stats.record_round t.stats;
  record_round_telemetry
    ~opcode:(if String.length encoded > 0 then Char.code encoded.[0] else 0)
    ~request_bytes:(String.length encoded) ~reply_bytes
    ~latency_s:(Telemetry.now () -. t0);
  match reply with
  | Message.Error_reply m -> protocol_error "peer error: %s" m
  | Message.Busy { retry_after_s } -> raise (Busy { retry_after_s })
  | Message.Quota_exceeded { quota; limit; requested } ->
    raise (Quota_exceeded { quota; limit; requested })
  | r -> r

let close t =
  if not t.closed then begin
    (try
       match (request t Message.Bye, t.backend) with
       | Message.Bye_ack { server_seconds }, Tcp _ ->
         (* The remote server reports its measured handler total in the
            accounting reply; local channels timed the handler directly. *)
         t.server_seconds <- t.server_seconds +. server_seconds
       | _ -> ()
     with _ -> ());
    t.closed <- true;
    match t.backend with
    | Local _ -> ()
    | Tcp st -> (try Unix.close st.fd with Unix.Unix_error _ -> ())
  end

let make ?config:cfg ?trace ?budget backend =
  {
    backend;
    config = (match cfg with Some c -> c | None -> default_config ());
    stats = Stats.create ();
    trace;
    budget;
    server_seconds = 0.0;
    closed = false;
  }

let local ?config ?trace handler = make ?config ?trace (Local handler)

let connect ?config ?trace ?(crc = true) ?(resume = true) ?retry ?rng ?sleep
    ?budget ?faults ~host ~port () =
  Lazy.force ignore_sigpipe;
  let rng =
    match rng with Some r -> r | None -> Ppst_rng.Secure_rng.system ()
  in
  let sleep = match sleep with Some s -> s | None -> Thread.delay in
  let connect_once () = tcp_socket_connect ~host ~port in
  let fd =
    match retry with
    | None -> connect_once ()
    | Some policy ->
      Retry.with_retry ~policy ~rng ~sleep ?budget
        ~classify:(function
          | Unix.Unix_error (e, _, _) when retryable_connect_errno e -> `Retry
          | Connection_lost _ -> `Retry
          | _ -> `Fail)
        connect_once
  in
  let offered =
    (if crc then Message.flag_crc32 else 0)
    lor if resume then Message.flag_resume else 0
  in
  make ?config ?trace ?budget
    (Tcp
       {
         fd;
         reconnect = Some { host; port; offered; retry; rng; sleep };
         faults;
         crc = false;
         granted = 0;
         token = "";
         rounds = 0;
       })

let serve_once ?config:cfg ~port ~handler () =
  Lazy.force ignore_sigpipe;
  let cfg = match cfg with Some c -> c | None -> default_config () in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close listener with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port));
      Unix.listen listener 1;
      let fd, _ = Unix.accept listener in
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Measure handler time so the client's accounting can include
             the server side even over TCP: the total is shipped back in
             the final Bye_ack (see Message.Bye_ack).  serve_once never
             grants capability flags (no CRC, no resume): it is the
             minimal single-session server; Server_loop is the
             fault-tolerant one. *)
          let handler_seconds = ref 0.0 in
          let timed req =
            let t0 = Unix.gettimeofday () in
            let reply = try handler req with e -> Message.Error_reply (Printexc.to_string e) in
            handler_seconds := !handler_seconds +. (Unix.gettimeofday () -. t0);
            reply
          in
          let rec loop () =
            match read_frame ~max_frame:cfg.max_frame fd with
            | None -> ()
            | Some frame ->
              let reply =
                match Message.decode frame with
                | Message.Request Message.Bye ->
                  Message.Bye_ack { server_seconds = !handler_seconds }
                | Message.Request (Message.Resume _) ->
                  Message.Resume_reject
                    { reason = "this server does not retain session state" }
                | Message.Request Message.Health_req ->
                  (* single-session server: serving this connection at
                     all means it is ready *)
                  Message.Health_reply
                    { status = 0; active = 0; capacity = 1; retry_after_s = 0.0 }
                | Message.Request req -> timed req
                | Message.Reply _ -> Message.Error_reply "expected a request"
                | exception Wire.Malformed m ->
                  Message.Error_reply ("malformed request: " ^ m)
              in
              write_frame ~max_frame:cfg.max_frame fd (Message.encode (Message.Reply reply));
              match reply with Message.Bye_ack _ -> () | _ -> loop ()
          in
          try loop () with Connection_lost _ -> ()))
