exception Protocol_error of string
exception Busy of { retry_after_s : float }
exception Timeout

module Telemetry = Ppst_telemetry.Telemetry
module Metrics = Ppst_telemetry.Metrics

(* Per-round observability (subsumes the deprecated Trace module): every
   request/reply pair updates these process-wide metrics and, at Debug,
   emits a "channel.round" point with opcode/sizes/latency — the record
   ppst_analyze's trace table aggregates. *)
let m_frame_bytes =
  Metrics.histogram
    ~buckets:[| 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144.; 1048576. |]
    "transport.frame.bytes"

let m_round_latency =
  Metrics.histogram
    ~buckets:[| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.; 3. |]
    "transport.round.latency_s"

let m_rounds = Metrics.counter "transport.rounds"

let record_round_telemetry ~opcode ~request_bytes ~reply_bytes ~latency_s =
  Metrics.observe m_frame_bytes (float_of_int request_bytes);
  Metrics.observe m_frame_bytes (float_of_int reply_bytes);
  Metrics.observe m_round_latency latency_s;
  Metrics.incr m_rounds;
  Telemetry.event ~level:Telemetry.Debug ~name:"channel.round"
    ~attrs:
      [
        ("opcode", Telemetry.Opcode opcode);
        ("request_bytes", Telemetry.Size request_bytes);
        ("reply_bytes", Telemetry.Size reply_bytes);
        ("latency_s", Telemetry.Duration latency_s);
      ]
    ()

let protocol_error fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

(* Frames on the wire: 4-byte big-endian length, then the message bytes.
   A hard cap guards against forged lengths.  The process-wide ref is
   only the default for channels created without an explicit [config];
   every channel carries its own cap (per-channel configuration). *)
let max_frame_cap = ref (256 * 1024 * 1024)

let max_frame () = !max_frame_cap

let check_cap n =
  if n < 16 then invalid_arg "Channel: frame cap below 16 bytes"

let set_max_frame n =
  check_cap n;
  max_frame_cap := n

type config = { max_frame : int }

let default_config () = { max_frame = !max_frame_cap }

let config ?max_frame () =
  match max_frame with
  | None -> default_config ()
  | Some n ->
    check_cap n;
    { max_frame = n }

type backend =
  | Local of (Message.request -> Message.reply)
  | Tcp of Unix.file_descr

type t = {
  backend : backend;
  config : config;
  stats : Stats.t;
  trace : Trace.t option;
  mutable server_seconds : float;
  mutable closed : bool;
}

let stats t = t.stats
let trace t = t.trace
let server_seconds t = t.server_seconds

(* A write to a peer-reset socket must surface as EPIPE (handled by the
   caller), not as a process-killing SIGPIPE — which is exactly what a
   client racing a server-side timeout close would otherwise get.
   Forced on every socket construction; a no-op where SIGPIPE does not
   exist. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let setup_sigpipe () = Lazy.force ignore_sigpipe

(* Retry a syscall interrupted by a signal (EINTR) — without this, any
   signal delivered mid-read kills the session with a spurious
   Protocol_error.  EAGAIN/EWOULDBLOCK are retried too: our sockets are
   blocking, so these only appear in rare kernel corner cases (e.g.
   after select wakeups) and mean "try again", never "give up". *)
let rec retry_on_intr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    retry_on_intr f

let write_frame ?max_frame:cap fd payload =
  let cap = match cap with Some c -> c | None -> !max_frame_cap in
  let len = String.length payload in
  if len > cap then protocol_error "frame too large: %d bytes" len;
  (* Header and body go out in one write: separate writes interact with
     Nagle + delayed ACK and add ~40 ms per round trip on loopback. *)
  let frame = Bytes.create (4 + len) in
  Bytes.set frame 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set frame 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set frame 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set frame 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 frame 4 len;
  let rec write_all off remaining =
    if remaining > 0 then begin
      let n = retry_on_intr (fun () -> Unix.write fd frame off remaining) in
      write_all (off + n) (remaining - n)
    end
  in
  write_all 0 (4 + len)

(* Block until [fd] is readable or the absolute monotonic [deadline]
   passes.  Recomputes the remaining budget after every EINTR wakeup, so
   a signal storm cannot extend the deadline. *)
let wait_readable fd deadline =
  let rec go () =
    let remaining = deadline -. Monoclock.now () in
    if remaining <= 0.0 then raise Timeout;
    match Unix.select [ fd ] [] [] remaining with
    | [], _, _ -> raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_exactly ?deadline fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Some buf
    else begin
      (match deadline with Some d -> wait_readable fd d | None -> ());
      match retry_on_intr (fun () -> Unix.read fd buf off (n - off)) with
      | 0 -> if off = 0 then None else protocol_error "truncated frame (eof mid-frame)"
      | k -> go (off + k)
    end
  in
  go 0

let read_frame ?max_frame:cap ?deadline fd =
  let cap = match cap with Some c -> c | None -> !max_frame_cap in
  match read_exactly ?deadline fd 4 with
  | None -> None
  | Some header ->
    let b i = Char.code (Bytes.get header i) in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > cap then protocol_error "frame length %d exceeds cap" len;
    (match read_exactly ?deadline fd len with
     | None -> protocol_error "truncated frame (eof in body)"
     | Some body -> Some (Bytes.to_string body))

let decode_reply bytes_str =
  match Message.decode bytes_str with
  | Message.Reply r -> r
  | Message.Request _ -> protocol_error "peer sent a request where a reply was expected"
  | exception Wire.Malformed m -> protocol_error "malformed reply: %s" m

let check_not_closed t = if t.closed then protocol_error "channel is closed"

let request t req =
  check_not_closed t;
  let cap = t.config.max_frame in
  let msg = Message.Request req in
  let encoded = Message.encode msg in
  let t0 = Telemetry.now () in
  Stats.record_sent t.stats ~bytes:(String.length encoded)
    ~values:(Message.values_in msg);
  let reply, reply_bytes =
    match t.backend with
    | Local handler ->
      (* Round-trip through the codec so byte accounting matches a socket
         run (the frame cap included), then time the server-side work
         separately. *)
      if String.length encoded > cap then
        protocol_error "frame too large: %d bytes" (String.length encoded);
      let decoded_req =
        match Message.decode encoded with
        | Message.Request r -> r
        | Message.Reply _ -> protocol_error "request decoded as reply"
      in
      let t0 = Unix.gettimeofday () in
      let reply =
        try handler decoded_req
        with e -> Message.Error_reply (Printexc.to_string e)
      in
      t.server_seconds <- t.server_seconds +. (Unix.gettimeofday () -. t0);
      let reply_encoded = Message.encode (Message.Reply reply) in
      if String.length reply_encoded > cap then
        protocol_error "frame length %d exceeds cap" (String.length reply_encoded);
      Stats.record_received t.stats ~bytes:(String.length reply_encoded)
        ~values:(Message.values_in (Message.Reply reply));
      (match t.trace with
       | Some tr ->
         Trace.record tr ~request_bytes:(String.length encoded)
           ~reply_bytes:(String.length reply_encoded)
       | None -> ());
      (decode_reply reply_encoded, String.length reply_encoded)
    | Tcp fd ->
      write_frame ~max_frame:cap fd encoded;
      (match read_frame ~max_frame:cap fd with
       | None -> protocol_error "connection closed by peer"
       | Some frame ->
         let reply = decode_reply frame in
         Stats.record_received t.stats ~bytes:(String.length frame)
           ~values:(Message.values_in (Message.Reply reply));
         (match t.trace with
          | Some tr ->
            Trace.record tr ~request_bytes:(String.length encoded)
              ~reply_bytes:(String.length frame)
          | None -> ());
         (reply, String.length frame))
  in
  Stats.record_round t.stats;
  record_round_telemetry
    ~opcode:(if String.length encoded > 0 then Char.code encoded.[0] else 0)
    ~request_bytes:(String.length encoded) ~reply_bytes
    ~latency_s:(Telemetry.now () -. t0);
  match reply with
  | Message.Error_reply m -> protocol_error "peer error: %s" m
  | Message.Busy { retry_after_s } -> raise (Busy { retry_after_s })
  | r -> r

let close t =
  if not t.closed then begin
    (try
       match (request t Message.Bye, t.backend) with
       | Message.Bye_ack { server_seconds }, Tcp _ ->
         (* The remote server reports its measured handler total in the
            accounting reply; local channels timed the handler directly. *)
         t.server_seconds <- t.server_seconds +. server_seconds
       | _ -> ()
     with _ -> ());
    t.closed <- true;
    match t.backend with
    | Local _ -> ()
    | Tcp fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let make ?config:cfg ?trace backend =
  {
    backend;
    config = (match cfg with Some c -> c | None -> default_config ());
    stats = Stats.create ();
    trace;
    server_seconds = 0.0;
    closed = false;
  }

let local ?config ?trace handler = make ?config ?trace (Local handler)

let connect ?config ?trace ~host ~port () =
  Lazy.force ignore_sigpipe;
  let addr =
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for host " ^ host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close fd;
     raise e);
  make ?config ?trace (Tcp fd)

let serve_once ?config:cfg ~port ~handler () =
  Lazy.force ignore_sigpipe;
  let cfg = match cfg with Some c -> c | None -> default_config () in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close listener with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port));
      Unix.listen listener 1;
      let fd, _ = Unix.accept listener in
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Measure handler time so the client's accounting can include
             the server side even over TCP: the total is shipped back in
             the final Bye_ack (see Message.Bye_ack). *)
          let handler_seconds = ref 0.0 in
          let timed req =
            let t0 = Unix.gettimeofday () in
            let reply = try handler req with e -> Message.Error_reply (Printexc.to_string e) in
            handler_seconds := !handler_seconds +. (Unix.gettimeofday () -. t0);
            reply
          in
          let rec loop () =
            match read_frame ~max_frame:cfg.max_frame fd with
            | None -> ()
            | Some frame ->
              let reply =
                match Message.decode frame with
                | Message.Request Message.Bye ->
                  Message.Bye_ack { server_seconds = !handler_seconds }
                | Message.Request req -> timed req
                | Message.Reply _ -> Message.Error_reply "expected a request"
                | exception Wire.Malformed m ->
                  Message.Error_reply ("malformed request: " ^ m)
              in
              write_frame ~max_frame:cfg.max_frame fd (Message.encode (Message.Reply reply));
              match reply with Message.Bye_ack _ -> () | _ -> loop ()
          in
          loop ()))
