exception Protocol_error of string

let protocol_error fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

type backend =
  | Local of (Message.request -> Message.reply)
  | Tcp of Unix.file_descr

type t = {
  backend : backend;
  stats : Stats.t;
  trace : Trace.t option;
  mutable server_seconds : float;
  mutable closed : bool;
}

let stats t = t.stats
let trace t = t.trace
let server_seconds t = t.server_seconds

(* Frames on the wire: 4-byte big-endian length, then the message bytes.
   A hard cap guards against forged lengths.  Mutable so tests can
   exercise the cap without 256 MiB frames. *)
let max_frame_cap = ref (256 * 1024 * 1024)

let max_frame () = !max_frame_cap

let set_max_frame n =
  if n < 16 then invalid_arg "Channel.set_max_frame: cap below 16 bytes";
  max_frame_cap := n

(* Retry a syscall interrupted by a signal (EINTR) — without this, any
   signal delivered mid-read kills the session with a spurious
   Protocol_error.  EAGAIN/EWOULDBLOCK are retried too: our sockets are
   blocking, so these only appear in rare kernel corner cases (e.g.
   after select wakeups) and mean "try again", never "give up". *)
let rec retry_on_intr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    retry_on_intr f

let write_frame fd payload =
  let len = String.length payload in
  if len > !max_frame_cap then protocol_error "frame too large: %d bytes" len;
  (* Header and body go out in one write: separate writes interact with
     Nagle + delayed ACK and add ~40 ms per round trip on loopback. *)
  let frame = Bytes.create (4 + len) in
  Bytes.set frame 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set frame 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set frame 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set frame 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 frame 4 len;
  let rec write_all off remaining =
    if remaining > 0 then begin
      let n = retry_on_intr (fun () -> Unix.write fd frame off remaining) in
      write_all (off + n) (remaining - n)
    end
  in
  write_all 0 (4 + len)

let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Some buf
    else begin
      match retry_on_intr (fun () -> Unix.read fd buf off (n - off)) with
      | 0 -> if off = 0 then None else protocol_error "truncated frame (eof mid-frame)"
      | k -> go (off + k)
    end
  in
  go 0

let read_frame fd =
  match read_exactly fd 4 with
  | None -> None
  | Some header ->
    let b i = Char.code (Bytes.get header i) in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > !max_frame_cap then protocol_error "frame length %d exceeds cap" len;
    (match read_exactly fd len with
     | None -> protocol_error "truncated frame (eof in body)"
     | Some body -> Some (Bytes.to_string body))

let decode_reply bytes_str =
  match Message.decode bytes_str with
  | Message.Reply r -> r
  | Message.Request _ -> protocol_error "peer sent a request where a reply was expected"
  | exception Wire.Malformed m -> protocol_error "malformed reply: %s" m

let check_not_closed t = if t.closed then protocol_error "channel is closed"

let request t req =
  check_not_closed t;
  let msg = Message.Request req in
  let encoded = Message.encode msg in
  Stats.record_sent t.stats ~bytes:(String.length encoded)
    ~values:(Message.values_in msg);
  let reply =
    match t.backend with
    | Local handler ->
      (* Round-trip through the codec so byte accounting matches a socket
         run, then time the server-side work separately. *)
      let decoded_req =
        match Message.decode encoded with
        | Message.Request r -> r
        | Message.Reply _ -> protocol_error "request decoded as reply"
      in
      let t0 = Unix.gettimeofday () in
      let reply =
        try handler decoded_req
        with e -> Message.Error_reply (Printexc.to_string e)
      in
      t.server_seconds <- t.server_seconds +. (Unix.gettimeofday () -. t0);
      let reply_encoded = Message.encode (Message.Reply reply) in
      Stats.record_received t.stats ~bytes:(String.length reply_encoded)
        ~values:(Message.values_in (Message.Reply reply));
      (match t.trace with
       | Some tr ->
         Trace.record tr ~request_bytes:(String.length encoded)
           ~reply_bytes:(String.length reply_encoded)
       | None -> ());
      decode_reply reply_encoded
    | Tcp fd ->
      write_frame fd encoded;
      (match read_frame fd with
       | None -> protocol_error "connection closed by peer"
       | Some frame ->
         let reply = decode_reply frame in
         Stats.record_received t.stats ~bytes:(String.length frame)
           ~values:(Message.values_in (Message.Reply reply));
         (match t.trace with
          | Some tr ->
            Trace.record tr ~request_bytes:(String.length encoded)
              ~reply_bytes:(String.length frame)
          | None -> ());
         reply)
  in
  Stats.record_round t.stats;
  match reply with
  | Message.Error_reply m -> protocol_error "peer error: %s" m
  | r -> r

let close t =
  if not t.closed then begin
    (try
       match (request t Message.Bye, t.backend) with
       | Message.Bye_ack { server_seconds }, Tcp _ ->
         (* The remote server reports its measured handler total in the
            accounting reply; local channels timed the handler directly. *)
         t.server_seconds <- t.server_seconds +. server_seconds
       | _ -> ()
     with _ -> ());
    t.closed <- true;
    match t.backend with
    | Local _ -> ()
    | Tcp fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let local ?trace handler =
  {
    backend = Local handler;
    stats = Stats.create ();
    trace;
    server_seconds = 0.0;
    closed = false;
  }

let connect ~host ~port =
  let addr =
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> failwith ("no address for host " ^ host)
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close fd;
     raise e);
  { backend = Tcp fd; stats = Stats.create (); trace = None; server_seconds = 0.0; closed = false }

let serve_once ~port ~handler =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close listener with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_any, port));
      Unix.listen listener 1;
      let fd, _ = Unix.accept listener in
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* Measure handler time so the client's accounting can include
             the server side even over TCP: the total is shipped back in
             the final Bye_ack (see Message.Bye_ack). *)
          let handler_seconds = ref 0.0 in
          let timed req =
            let t0 = Unix.gettimeofday () in
            let reply = try handler req with e -> Message.Error_reply (Printexc.to_string e) in
            handler_seconds := !handler_seconds +. (Unix.gettimeofday () -. t0);
            reply
          in
          let rec loop () =
            match read_frame fd with
            | None -> ()
            | Some frame ->
              let reply =
                match Message.decode frame with
                | Message.Request Message.Bye ->
                  Message.Bye_ack { server_seconds = !handler_seconds }
                | Message.Request req -> timed req
                | Message.Reply _ -> Message.Error_reply "expected a request"
                | exception Wire.Malformed m ->
                  Message.Error_reply ("malformed request: " ^ m)
              in
              write_frame fd (Message.encode (Message.Reply reply));
              match reply with Message.Bye_ack _ -> () | _ -> loop ()
          in
          loop ()))
