(** LB_Keogh lower bounds for DTW (Keogh, VLDB 2002 — the paper's
    reference [20] for exact DTW indexing).

    Given a Sakoe–Chiba band [r], the {e envelope} of a series [Y] is the
    pair of running extremes [U_j = max Y\[j-r .. j+r\]],
    [L_j = min Y\[j-r .. j+r\]].  For any [X] of the same length,
    [lb_keogh ~band:r x y] lower-bounds [dtw_sq_banded ~band:r x y]: each
    band-constrained coupling partner of [x_j] lies inside the envelope,
    so the one-sided squared gap to the envelope never overestimates the
    true coupling cost.  Plaintext retrieval systems use this to prune
    candidates before paying the quadratic DTW cost; here it serves the
    {e plaintext} side of hybrid workflows (pre-filtering public metadata
    before running the secure protocol on the shortlist) and as a test
    oracle for the banded DTW implementations.

    Only 1-dimensional series are supported, matching the classic
    formulation. *)

val envelope : band:int -> Series.t -> int array * int array
(** [(upper, lower)] running extremes over the window [j-band .. j+band].
    @raise Invalid_argument for multi-dimensional series or negative
    band. *)

val lb_keogh : band:int -> Series.t -> Series.t -> int
(** The squared-cost LB_Keogh bound; requires equal lengths.
    With [band = 0] it degenerates to the squared Euclidean distance.
    @raise Invalid_argument on length/dimension mismatch. *)

val segment_bounds :
  segments:int -> band:int option -> Series.t -> int array array * int array array
(** [(lo, hi)] per-segment, per-dimension extremes of [series] over the
    coupling window of each query segment: segment [s] covers query
    positions [\[Paa.frame_bounds s, Paa.frame_bounds (s+1))], and its
    window in [series] widens that range by [band] on each side
    ([band = None] means the whole series — unbanded DTW/DFD;
    [band = Some 0] means lockstep — Euclidean).  [lo.(s).(l)] /
    [hi.(s).(l)] bound coordinate [l] of every possible coupling partner
    of segment [s].  Works for any dimension.  This is the multi-segment
    generalization of {!envelope}, and the sketch the catalog server
    ships (encrypted) for secure pruning.
    @raise Invalid_argument if [segments] is outside [\[1, length\]] or
    [band] is negative. *)

val gap_sum : segments:int -> band:int option -> Series.t -> Series.t -> int
(** [gap_sum ~segments ~band x y] — the plaintext gap-sum lower-bound
    statistic [G = Σ_{s,l} max(S_x - w·Hi, w·Lo - S_x, 0)] where [S_x]
    sums coordinate [l] of [x] over segment [s], [w] is the segment
    width, and [Lo]/[Hi] come from [segment_bounds ~segments ~band y].
    Soundness (no false dismissals): for equal-length series,
    [dtw_sq_banded ~band x y ≥ G² / (d·m)] (likewise unbanded DTW and
    Euclidean, each with their own coupling window), and
    [dfd_sq ≥ (G / (d·m))²] — every warping path couples each [x_i]
    with a partner inside its segment window, the per-pair deviation is
    at least the one-sided segment gap, and Cauchy–Schwarz turns the
    absolute-deviation sum into a squared-cost bound.  The secure
    pruning round computes exactly this [G] under encryption.
    @raise Invalid_argument on length/dimension mismatch. *)

val prune :
  band:int -> radius:int -> query:Series.t -> Series.t array -> int list
(** Indices of database entries whose lower bound does not exceed
    [radius] — the candidates that still need an exact (or secure) DTW
    evaluation.  Entries of a different length than the query are kept
    (the bound does not apply to them). *)
