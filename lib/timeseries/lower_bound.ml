let check_1d what s =
  if Series.dimension s <> 1 then invalid_arg (what ^ ": only 1-dimensional series")

let envelope ~band series =
  check_1d "Lower_bound.envelope" series;
  if band < 0 then invalid_arg "Lower_bound.envelope: negative band";
  let n = Series.length series in
  let upper = Array.make n min_int and lower = Array.make n max_int in
  for j = 0 to n - 1 do
    let lo = Stdlib.max 0 (j - band) and hi = Stdlib.min (n - 1) (j + band) in
    for t = lo to hi do
      let v = Series.value series t in
      if v > upper.(j) then upper.(j) <- v;
      if v < lower.(j) then lower.(j) <- v
    done
  done;
  (upper, lower)

let lb_keogh ~band x y =
  check_1d "Lower_bound.lb_keogh" x;
  check_1d "Lower_bound.lb_keogh" y;
  if Series.length x <> Series.length y then
    invalid_arg "Lower_bound.lb_keogh: series lengths differ";
  let upper, lower = envelope ~band y in
  let acc = ref 0 in
  for j = 0 to Series.length x - 1 do
    let v = Series.value x j in
    if v > upper.(j) then begin
      let d = v - upper.(j) in
      acc := !acc + (d * d)
    end
    else if v < lower.(j) then begin
      let d = lower.(j) - v in
      acc := !acc + (d * d)
    end
  done;
  !acc

(* Y-window coupled to the X-segment [a, b): under a Sakoe–Chiba band of
   radius [r] every warping partner of an index in [a, b) lies within
   [a - r, b - 1 + r]; without a band the whole series is reachable. *)
let window ~band ~length a b =
  match band with
  | None -> (0, length - 1)
  | Some r ->
    if r < 0 then invalid_arg "Lower_bound.segment_bounds: negative band";
    (Stdlib.max 0 (a - r), Stdlib.min (length - 1) (b - 1 + r))

let segment_bounds ~segments ~band series =
  let n = Series.length series in
  if segments <= 0 || segments > n then
    invalid_arg "Lower_bound.segment_bounds: segments must be in [1, length]";
  let d = Series.dimension series in
  let lo = Array.init segments (fun _ -> Array.make d max_int) in
  let hi = Array.init segments (fun _ -> Array.make d min_int) in
  for s = 0 to segments - 1 do
    let a = Paa.frame_bounds ~segments ~length:n s in
    let b = Paa.frame_bounds ~segments ~length:n (s + 1) in
    let wa, wb = window ~band ~length:n a b in
    for j = wa to wb do
      let p = Series.get series j in
      for l = 0 to d - 1 do
        if p.(l) < lo.(s).(l) then lo.(s).(l) <- p.(l);
        if p.(l) > hi.(s).(l) then hi.(s).(l) <- p.(l)
      done
    done
  done;
  (lo, hi)

let gap_sum ~segments ~band x y =
  if Series.length x <> Series.length y then
    invalid_arg "Lower_bound.gap_sum: series lengths differ";
  if Series.dimension x <> Series.dimension y then
    invalid_arg "Lower_bound.gap_sum: series dimensions differ";
  let n = Series.length x and d = Series.dimension x in
  let lo, hi = segment_bounds ~segments ~band y in
  let acc = ref 0 in
  for s = 0 to segments - 1 do
    let a = Paa.frame_bounds ~segments ~length:n s in
    let b = Paa.frame_bounds ~segments ~length:n (s + 1) in
    let w = b - a in
    for l = 0 to d - 1 do
      let sum = ref 0 in
      for i = a to b - 1 do
        sum := !sum + (Series.get x i).(l)
      done;
      let over = !sum - (w * hi.(s).(l)) in
      let under = (w * lo.(s).(l)) - !sum in
      acc := !acc + Stdlib.max 0 (Stdlib.max over under)
    done
  done;
  !acc

let prune ~band ~radius ~query database =
  let candidates = ref [] in
  for i = Array.length database - 1 downto 0 do
    let keep =
      Series.length database.(i) <> Series.length query
      || Series.dimension database.(i) <> 1
      || lb_keogh ~band query database.(i) <= radius
    in
    if keep then candidates := i :: !candidates
  done;
  !candidates
