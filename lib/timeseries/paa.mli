(** Piecewise Aggregate Approximation (PAA) and SAX symbolization —
    the dimensionality-reduction companions of Keogh-style DTW indexing
    (the paper's reference [20] ecosystem).

    PAA splits a series into [segments] equal-width frames and replaces
    each frame by its mean.  SAX further discretizes the PAA means into an
    alphabet using Gaussian breakpoints, giving a compact symbolic sketch.
    Both operate on plaintext data: in this repository they serve the
    public-metadata side of hybrid retrieval (sketch-level pre-filtering
    before the secure protocol runs on the shortlist) and general
    time-series tooling. *)

val frame_bounds : segments:int -> length:int -> int -> int
(** [frame_bounds ~segments ~length i = i * length / segments] — the start
    index of frame [i]; frame [i] covers positions
    [\[frame_bounds i, frame_bounds (i+1))].  Exposed because the secure
    catalog-pruning round needs client and server to agree on the exact
    segmentation rule. *)

val paa : segments:int -> Series.Fseries.t -> float array
(** Frame means of a 1-dimensional float series.  Frames differ by at
    most one element in width when the length is not divisible.
    @raise Invalid_argument for multi-dimensional input, non-positive
    [segments], or [segments] exceeding the length. *)

val paa_int : segments:int -> Series.t -> float array
(** PAA of an integer series (values taken as floats). *)

val sax_breakpoints : alphabet:int -> float array
(** The [alphabet - 1] standard-normal breakpoints that make each symbol
    equiprobable for N(0,1) data (supported alphabets: 2..10).
    @raise Invalid_argument otherwise. *)

val sax : segments:int -> alphabet:int -> Series.Fseries.t -> int array
(** SAX word of a series: z-normalize, PAA, then quantize by
    {!sax_breakpoints}.  Symbols are integers in [\[0, alphabet)]. *)

val sax_distance_sq :
  alphabet:int -> original_length:int -> int array -> int array -> float
(** MINDIST² between two SAX words of equal segment count: the classic
    lower bound on the squared Euclidean distance of the z-normalized
    originals.  Adjacent symbols contribute zero (the SAX guarantee).
    @raise Invalid_argument on length mismatch. *)
