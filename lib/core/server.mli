(** The server party: owns time series [Y] and the Paillier secret key,
    answers protocol requests (paper Sections 3.2, 5.1, 6).

    The server is deliberately {e stateless across requests} beyond the
    key and series: every [Min_request]/[Max_request] is answered by
    decrypt-compare-re-encrypt with no memory of previous cells, exactly
    as the paper's protocol prescribes.  Re-encryption (rather than
    echoing a received ciphertext) is what hides the optimal warping path
    (Section 5.5). *)

open Import

type t

val create :
  ?params:Params.t ->
  ?decryption:[ `Standard | `Crt ] ->
  ?workers:Parallel.t ->
  ?max_reveals:int ->
  rng:Secure_rng.t ->
  series:Series.t ->
  max_value:int ->
  unit ->
  t
(** Generate a key pair and stand up a server for [series].  [max_value]
    is the public coordinate bound advertised in [Welcome]; every
    coordinate of [series] must lie in [\[0, max_value\]].

    [decryption] selects the decryption path: [`Standard] (default)
    matches the paper's cost profile, where decryption is the expensive
    server-side operation; [`Crt] enables the ~2x-faster CRT decryption —
    an optimization beyond the paper, benchmarked in the ablation suite.

    [workers] (default sequential) fans candidate decryption and phase-1
    encryption out over a Domain pool.  Replies are bit-identical at any
    pool size: decryption is deterministic and batch encryption draws
    its randomness sequentially.

    [max_reveals] caps the number of [Reveal_request]s the server will
    answer in this session — the disclosure-control hook the paper's
    "information that is leaked if a client runs many queries" caveat
    calls for.  Further reveals get an [Error_reply].  Unlimited when
    omitted.
    @raise Invalid_argument otherwise. *)

val create_with_key :
  ?decryption:[ `Standard | `Crt ] ->
  ?workers:Parallel.t ->
  ?max_reveals:int ->
  sk:Paillier.private_key ->
  rng:Secure_rng.t ->
  series:Series.t ->
  max_value:int ->
  unit ->
  t
(** Reuse an existing key (the TCP server binary loads one from disk). *)

(** {1 Multi-record databases (similarity-search extension)}

    A server may hold several records sharing one dimension and value
    bound.  The client discovers them with [Catalog_request] and switches
    the active series with [Select_request]; [Welcome] and
    [Phase1_request] always describe the active record.  This is the
    similarity-search setting of the paper's introduction (hospital ECG
    lookup): one connection, one key, many secure comparisons. *)

val create_db :
  ?params:Params.t ->
  ?decryption:[ `Standard | `Crt ] ->
  ?workers:Parallel.t ->
  ?max_reveals:int ->
  ?ids:string array ->
  rng:Secure_rng.t ->
  records:Series.t array ->
  max_value:int ->
  unit ->
  t
(** [ids] names the records for [Catalog_list_request] enumeration
    (default ["0"], ["1"], ...); must match [records] in length.
    @raise Invalid_argument on an empty record set, mixed dimensions,
    out-of-bound coordinates, or an ids length mismatch. *)

val create_db_with_key :
  ?decryption:[ `Standard | `Crt ] ->
  ?workers:Parallel.t ->
  ?max_reveals:int ->
  ?ids:string array ->
  sk:Paillier.private_key ->
  rng:Secure_rng.t ->
  records:Series.t array ->
  max_value:int ->
  unit ->
  t

val of_store :
  ?params:Params.t ->
  ?decryption:[ `Standard | `Crt ] ->
  ?workers:Parallel.t ->
  ?max_reveals:int ->
  rng:Secure_rng.t ->
  store:Store.t ->
  max_value:int ->
  unit ->
  t
(** Stand up a catalog server over a {!Store}: records and ids are the
    store's, in store order. *)

val of_store_with_key :
  ?decryption:[ `Standard | `Crt ] ->
  ?workers:Parallel.t ->
  ?max_reveals:int ->
  sk:Paillier.private_key ->
  rng:Secure_rng.t ->
  store:Store.t ->
  max_value:int ->
  unit ->
  t

val record_count : t -> int
val selected : t -> int

val handle : t -> Message.request -> Message.reply
(** Answer one request.  Ill-formed or out-of-range requests produce
    [Error_reply], never an exception.  Partial application
    ([Server.handle server]) is the handler shape {!Channel.local},
    {!Channel.serve_once} and {!Server_loop} expect.  (A [handler]
    alias used to exist; it was the same function and is gone.) *)

val public_key : t -> Paillier.public_key
val private_key : t -> Paillier.private_key
val ops : t -> Cost.ops
(** Cryptographic operation counters (decryptions dominate, per the
    paper's Section 5.2 analysis). *)

val reveal_count : t -> int
(** Number of [Reveal_request]s answered — observability hook: each
    reveal discloses one plaintext to both parties, so callers enforcing
    a one-result-per-session policy can check this. *)

val export_state : t -> string
(** Serialize the per-session protocol state (selected record index,
    reveal count, crypto-op counters) for cross-worker failover.  The
    key, records and worker pool are configuration the restoring worker
    already owns; the rng stream position is deliberately excluded —
    server-side randomness cancels at decryption, so a restored server's
    replies decrypt to the same plaintexts and every revealed distance
    is bit-identical (see SECURITY.md). *)

val restore_state : t -> string -> unit
(** Apply {!export_state} output to a freshly built server over the same
    records.  @raise Ppst_transport.Wire.Malformed on a corrupt blob or
    an out-of-range record index. *)
