(** Security parameters of the masking protocols (paper Section 5.3).

    Notation (paper): matrix plaintexts lie in [(2^β, 2^(β+1)\]], random
    offsets in [(2^γ, 2^(γ+1)\]], the random set has [k = 2^α] values.
    The constraints enforced here:

    - [0 < γ - β < α] — offsets dense enough that candidate gaps hide the
      real values, yet spread over a range larger than the plaintexts;
    - [β + γ < |P|] — no wrap-around in the Paillier plaintext space
      (checked precisely against the actual modulus and value bound);
    - [k >= 4] — below that no [γ] satisfies the first constraint. *)

open Import

type t = {
  key_bits : int;  (** Paillier modulus size; paper experiments use 64 *)
  k : int;  (** random-set size; paper default 10, swept 10–50 in Fig. 11 *)
  gamma_slack : int;  (** [γ - β]; must satisfy [0 < slack < log2 k] *)
}

val default : t
(** [{ key_bits = 64; k = 10; gamma_slack = 2 }] — the paper's
    experimental configuration. *)

val make : ?key_bits:int -> ?k:int -> ?gamma_slack:int -> unit -> t

exception Insecure of string
(** Raised when a configuration violates a Section 5.3 constraint. *)

type session = {
  params : t;
  beta : int;  (** matrix values are < 2^(β+1) *)
  gamma : int;  (** offsets drawn from (2^γ, 2^(γ+1)] *)
  value_bound : Bigint.t;  (** strict upper bound on any matrix plaintext *)
  offset_lo : Bigint.t;  (** 2^γ + 1 *)
  offset_hi : Bigint.t;  (** 2^(γ+1) *)
}

val plan :
  t ->
  max_value:int ->
  dimension:int ->
  client_length:int ->
  server_length:int ->
  modulus:Bigint.t ->
  distance:[ `Dtw | `Dfd | `Erp | `Euclidean ] ->
  session
(** Derive and validate per-session constants.  [max_value] bounds every
    coordinate of both series.  The matrix-value bound depends on the
    distance: [(m + n - 1) * d * max_value²] for DTW (longest warping
    path), [d * max_value²] for DFD (max of single costs),
    [(m + n) * d * max_value²] for ERP (matches plus gap penalties), and
    [min(m, n) * d * max_value²] for plain/windowed Euclidean sums.
    @raise Insecure when no valid [γ] exists or the masked candidates
    could wrap around the modulus. *)

val plan_bound : t -> value_bound:Bigint.t -> modulus:Bigint.t -> session
(** [plan_bound] derives a session directly from an explicit strict upper
    bound on the masked plaintexts, bypassing the distance-specific bound
    computation of {!plan}.  Used by auxiliary protocols (the catalog
    pruning round) whose plaintexts are not DP-matrix entries.
    @raise Insecure under the same conditions as {!plan}. *)

val alpha : t -> int
(** [⌊log2 k⌋]. *)

val pp : Format.formatter -> t -> unit
val pp_session : Format.formatter -> session -> unit
