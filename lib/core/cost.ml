type phase = Phase1 | Phase2 | Phase3

type ops = {
  mutable encryptions : int;
  mutable decryptions : int;
  mutable homomorphic : int;
}

let empty_ops () = { encryptions = 0; decryptions = 0; homomorphic = 0 }

type t = {
  client : ops;
  server : ops;
  client_time : float array;
  server_time : float array;
  mutable client_offline : float;
  mutable jobs : int;
  mutable pool_misses : int;
}

let create () =
  {
    client = empty_ops ();
    server = empty_ops ();
    client_time = Array.make 3 0.0;
    server_time = Array.make 3 0.0;
    client_offline = 0.0;
    jobs = 1;
    pool_misses = 0;
  }

let index = function Phase1 -> 0 | Phase2 -> 1 | Phase3 -> 2

let client_ops t = t.client
let server_ops t = t.server

let add_client_time t phase dt = t.client_time.(index phase) <- t.client_time.(index phase) +. dt
let add_server_time t phase dt = t.server_time.(index phase) <- t.server_time.(index phase) +. dt

let client_seconds t phase = t.client_time.(index phase)
let server_seconds t phase = t.server_time.(index phase)

let sum = Array.fold_left ( +. ) 0.0

let add_client_offline t dt = t.client_offline <- t.client_offline +. dt
let client_offline_seconds t = t.client_offline

let set_jobs t jobs = t.jobs <- jobs
let jobs t = t.jobs

let set_pool_misses t misses = t.pool_misses <- misses
let pool_misses t = t.pool_misses

let client_total_seconds t = sum t.client_time
let server_total_seconds t = sum t.server_time

let total_seconds t =
  client_total_seconds t +. server_total_seconds t +. t.client_offline

let merge a b =
  {
    client =
      {
        encryptions = a.client.encryptions + b.client.encryptions;
        decryptions = a.client.decryptions + b.client.decryptions;
        homomorphic = a.client.homomorphic + b.client.homomorphic;
      };
    server =
      {
        encryptions = a.server.encryptions + b.server.encryptions;
        decryptions = a.server.decryptions + b.server.decryptions;
        homomorphic = a.server.homomorphic + b.server.homomorphic;
      };
    client_time = Array.init 3 (fun i -> a.client_time.(i) +. b.client_time.(i));
    server_time = Array.init 3 (fun i -> a.server_time.(i) +. b.server_time.(i));
    client_offline = a.client_offline +. b.client_offline;
    jobs = Stdlib.max a.jobs b.jobs;
    pool_misses = a.pool_misses + b.pool_misses;
  }

let ops_to_json o =
  Printf.sprintf {|{"encryptions":%d,"decryptions":%d,"homomorphic":%d}|}
    o.encryptions o.decryptions o.homomorphic

let to_json t =
  Printf.sprintf
    {|{"client":%s,"server":%s,"client_seconds":[%.6f,%.6f,%.6f],"server_seconds":[%.6f,%.6f,%.6f],"client_offline_seconds":%.6f,"jobs":%d,"pool_misses":%d,"total_seconds":%.6f}|}
    (ops_to_json t.client) (ops_to_json t.server) t.client_time.(0)
    t.client_time.(1) t.client_time.(2) t.server_time.(0) t.server_time.(1)
    t.server_time.(2) t.client_offline t.jobs t.pool_misses (total_seconds t)

let pp_ops fmt o =
  Format.fprintf fmt "enc=%d dec=%d hom=%d" o.encryptions o.decryptions o.homomorphic

let pp fmt t =
  Format.fprintf fmt
    "@[<v>client: %a, online %.3fs (p1 %.3f, p2 %.3f, p3 %.3f), offline %.3fs, pool misses %d@,server: %a, time %.3fs (p1 %.3f, p2 %.3f, p3 %.3f)@,jobs: %d@]"
    pp_ops t.client (client_total_seconds t) t.client_time.(0) t.client_time.(1)
    t.client_time.(2) t.client_offline t.pool_misses pp_ops t.server
    (server_total_seconds t) t.server_time.(0) t.server_time.(1) t.server_time.(2)
    t.jobs
