(* Secure 1-vs-N catalog search: a two-stage pipeline over a server
   catalog.  Stage 1 evaluates a cheap secure lower bound per candidate
   (the gap-sum statistic of [Lower_bound.gap_sum], computed under
   encryption from the server's per-segment sketch) and discards
   candidates that provably cannot beat the current threshold; stage 2
   runs the exact secure protocol only on the survivors.

   Soundness of the pruning rule (no false dismissals): for candidate
   series Y of the same length m as the query X, with G the gap-sum
   statistic and c_f the confidence factor (d*m for DTW / banded DTW /
   Euclidean, (d*m)^2 for DFD),

     D(X, Y) >= G^2 / c_f.

   Discarding when G >= tau_G + 1 with tau_G = isqrt(c_f * tau) implies
   G^2 > c_f * tau, hence D > tau: the candidate cannot enter a result
   set thresholded at tau.  ERP and length-mismatched candidates have no
   such bound and always go straight to the exact stage.

   What the pruning stage reveals is analysed in SECURITY.md: the server
   learns one survive/discard bit per candidate (blinded sign test); the
   client learns nothing beyond the distances of the candidates it
   evaluates exactly. *)

open Import

(* Query-path observability: stage-level counters and timings surfaced
   through Stats_req and the metrics endpoint.  All aggregate quantities
   the protocol already reveals (candidate counts and survive/prune bits
   are known to both parties; sketch bytes are wire accounting). *)
let m_submitted = Metrics.counter "query.submitted"
let m_candidates = Metrics.counter "query.candidates"
let m_pruned = Metrics.counter "query.pruned"
let m_survivors = Metrics.counter "query.survivors"
let m_sketch_bytes = Metrics.counter "query.sketch_bytes"
let m_incomplete = Metrics.counter "query.incomplete"
let h_stage1 = Metrics.histogram "query.stage1.seconds"
let h_stage2 = Metrics.histogram "query.stage2.seconds"

type hit = { index : int; id : string; distance : Bigint.t }

type incomplete_reason = Deadline | Retries | Server_error of string

let reason_to_string = function
  | Deadline -> "deadline"
  | Retries -> "retries"
  | Server_error m -> Printf.sprintf "server-error: %s" m

type incomplete = { index : int; id : string; reason : incomplete_reason }

type report = {
  hits : hit array;
  total : int;
  evaluated : int;
  pruned : int;
  incomplete : incomplete array;
}

let prunable_spec (s : Protocol.spec) =
  match s.Protocol.algo with `Erp -> false | `Dtw | `Dfd | `Euclidean -> true

(* The coupling window the sketch must cover: Euclidean couples in
   lockstep (band 0); DTW/DFD follow the spec's Sakoe–Chiba band (None =
   any partner). *)
let lb_band (s : Protocol.spec) =
  match s.Protocol.algo with
  | `Euclidean -> Some 0
  | `Dtw | `Dfd -> s.Protocol.band
  | `Erp -> assert false

let confidence_factor (s : Protocol.spec) ~d ~m =
  let dm = Bigint.of_int (d * m) in
  match s.Protocol.algo with `Dfd -> Bigint.mul dm dm | _ -> dm

let frame_widths ~segments ~length =
  Array.init segments (fun i ->
      Paa.frame_bounds ~segments ~length (i + 1)
      - Paa.frame_bounds ~segments ~length i)

(* Per-segment, per-dimension coordinate sums of the client's series —
   the S_x side of the gap-sum statistic.  Plaintext: the client owns
   this data. *)
let segment_sums t ~segments =
  let m = Client.client_length t in
  let d = Array.length (Client.client_element t 0) in
  let sums = Array.make_matrix segments d 0 in
  for s = 0 to segments - 1 do
    let a = Paa.frame_bounds ~segments ~length:m s
    and b = Paa.frame_bounds ~segments ~length:m (s + 1) in
    for i = a to b - 1 do
      let e = Client.client_element t i in
      for l = 0 to d - 1 do
        sums.(s).(l) <- sums.(s).(l) + e.(l)
      done
    done
  done;
  sums

(* One secure pruning round over [indices] (candidates of the client's
   length) against threshold [tau] on the squared distance.  Returns
   survive flags aligned with [indices]; conservatively all-true when
   nothing can be discarded or the modulus is too small for the blinded
   verdict. *)
let prune_round t (s : Protocol.spec) ~segments ~tau ~indices =
  let ni = Array.length indices in
  let m = Client.client_length t in
  let d = Array.length (Client.client_element t 0) in
  let v = Client.max_value t in
  let tau_g = Bigint.isqrt (Bigint.mul (confidence_factor s ~d ~m) tau) in
  (* G never exceeds d*m*V, so a cut above it can discard nothing: skip
     the round (and its traffic) entirely. *)
  let g_max = Bigint.of_int (d * m * v) in
  if Bigint.compare tau_g g_max >= 0 then Array.make ni true
  else begin
    let wire = Client.stats t in
    let t0 = Telemetry.now () in
    let v0 = Stats.total_values wire in
    let b0 = Stats.bytes_received wire in
    let sketches = Client.query_submit t ~segments ~band:(lb_band s) ~indices in
    Metrics.incr ~by:(Stats.bytes_received wire - b0) m_sketch_bytes;
    let widths = frame_widths ~segments ~length:m in
    let w_max = Array.fold_left Stdlib.max 1 widths in
    let sums = segment_sums t ~segments in
    (* Each 3-way max instance holds values in [0, 2*w_s*V] after the
       public shift C_s = w_s*V; mask them under a session planned for
       exactly that bound. *)
    let aux =
      Client.plan_aux_session t
        ~value_bound:(Bigint.of_int ((2 * w_max * v) + 1))
    in
    (* Enc(C_s) once per segment; sharing it across candidates is safe
       because the masking round re-randomizes every instance. *)
    let enc_shift =
      Array.init segments (fun si -> Client.encrypt_constant t (widths.(si) * v))
    in
    let per = segments * d in
    let instances = Array.make (ni * per) [||] in
    Array.iteri
      (fun c (lo, hi) ->
        for si = 0 to segments - 1 do
          let w = widths.(si) in
          let cs = w * v in
          for l = 0 to d - 1 do
            let idx = (si * d) + l in
            let sx = sums.(si).(l) in
            (* max(S_x - w*Hi, w*Lo - S_x, 0) + C_s, via the shared
               shifted zero candidate Enc(C_s). *)
            let a1 =
              Client.add_plain_big t
                (Client.scalar_mul t hi.(idx) (Bigint.of_int (-w)))
                (Bigint.of_int (sx + cs))
            in
            let a2 =
              Client.add_plain_big t
                (Client.scalar_mul t lo.(idx) (Bigint.of_int w))
                (Bigint.of_int (cs - sx))
            in
            instances.((c * per) + idx) <- [| a1; a2; enc_shift.(si) |]
          done
        done)
      sketches;
    let maxes =
      Client.with_session t aux (fun () -> Client.secure_max_batch t instances)
    in
    (* Sum the per-(segment, dimension) maxima: Sigma_s d*C_s = d*m*V, so
       the fold yields Enc(G + d*m*V); subtracting d*m*V + tau_G + 1
       leaves the signed difference G - (tau_G + 1): negative iff the
       candidate survives. *)
    let cut = Bigint.add g_max (Bigint.succ tau_g) in
    let diffs =
      Array.init ni (fun c ->
          let base = c * per in
          let acc = ref maxes.(base) in
          for j = 1 to per - 1 do
            acc := Client.add t !acc maxes.(base + j)
          done;
          Client.add_plain_big t !acc (Bigint.neg cut))
    in
    let bound = Bigint.succ (Bigint.max g_max (Bigint.succ tau_g)) in
    let verdict = Client.verdict_round t ~bound diffs in
    Metrics.observe h_stage1 (Telemetry.now () -. t0);
    match verdict with
    | Some survive ->
      (* The full round ran, so its wire cost must match the closed form
         exactly — the predicted-vs-actual ledger check of this query. *)
      let predicted =
        Protocol.expected_query_values ~params:(Client.params t)
          ~candidates:ni ~segments ~d
      in
      ignore
        (Ledger.record ~workload:Ledger.Query ~predicted
           ~actual:(Stats.total_values wire - v0));
      survive
    | None ->
      (* modulus too small to blind the verdict: the round was cut short
         before the verdict frame, so the closed form does not apply *)
      Array.make ni true
  end

(* Degraded-mode machinery.  A candidate whose exact run dies on a
   transport-class failure is recorded in [incomplete] and skipped
   instead of sinking the whole query; anything else (Invalid_argument,
   logic bugs) still propagates. *)
let reason_of_exn = function
  | Retry.Budget.Exceeded _ | Channel.Timeout | Channel.Stalled ->
    Some Deadline
  | Retry.Exhausted _ | Retry.Breaker.Open_circuit _ | Channel.Busy _
  | Channel.Connection_lost _ | Channel.Frame_corrupt _ ->
    Some Retries
  | Channel.Protocol_error m | Channel.Resume_rejected m ->
    Some (Server_error m)
  | _ -> None

(* Per-query budget harness.  [budget] (whole query) is installed on the
   client's channel for the duration; [candidate_budget_s] derives a
   fresh sub-budget per exact run so one stuck candidate cannot eat the
   whole allowance.  [guard i f] runs one candidate under that regime:
   [Some d] on success, [None] with an [incomplete] record otherwise. *)
let budget_guard ?budget ?candidate_budget_s t =
  (match candidate_budget_s with
  | Some s when s <= 0.0 ->
    invalid_arg "Query: candidate_budget_s must be positive"
  | _ -> ());
  let ch = Client.channel t in
  let saved = Channel.budget ch in
  (* An explicit query budget overrides whatever the channel carried;
     otherwise the channel's own budget (from [Channel.connect
     ?budget]) keeps governing. *)
  let outer = match budget with Some _ -> budget | None -> saved in
  (match budget with Some _ -> Channel.set_budget ch budget | None -> ());
  let incomplete = ref [] in
  let skip i reason =
    Metrics.incr m_incomplete;
    incomplete := { index = i; id = ""; reason } :: !incomplete
  in
  let expired () =
    match outer with Some b -> Retry.Budget.expired b | None -> false
  in
  let sub_budget () =
    match candidate_budget_s with
    | None -> None
    | Some s ->
      Some
        (match outer with
        | Some b -> Retry.Budget.sub b ~budget_s:s
        | None -> Retry.Budget.create ~budget_s:s ())
  in
  let guard i f =
    if expired () then begin
      skip i Deadline;
      None
    end
    else begin
      (match sub_budget () with
      | None -> ()
      | Some sb -> Channel.set_budget ch (Some sb));
      let restore () = Channel.set_budget ch outer in
      match f () with
      | d ->
        restore ();
        Some d
      | exception e ->
        restore ();
        (match reason_of_exn e with
        | Some r ->
          skip i r;
          None
        | None -> raise e)
    end
  in
  let restore_saved () = Channel.set_budget ch saved in
  let incomplete_of ids =
    let arr =
      !incomplete
      |> List.map (fun inc -> { inc with id = ids.(inc.index) })
      |> Array.of_list
    in
    Array.sort (fun a b -> Stdlib.compare a.index b.index) arr;
    arr
  in
  (guard, incomplete_of, restore_saved)

(* Stage-1 failure degrades to the exhaustive scan: an all-true verdict
   is always sound (pruning is an optimisation), so a recoverable
   transport failure mid-round must never fail the query. *)
let prune_round_safe t s ~segments ~tau ~indices =
  match prune_round t s ~segments ~tau ~indices with
  | survive -> survive
  | exception e when reason_of_exn e <> None ->
    Array.make (Array.length indices) true

let check_segments ~segments ~m =
  if segments < 1 || segments > m then
    invalid_arg
      (Printf.sprintf "Query: segments = %d outside [1, %d]" segments m)

let default_segments m = Stdlib.min 8 m

(* Exact stage: switch the active record and run the spec's driver. *)
let eval_exact t runner evaluated index =
  incr evaluated;
  Client.select_record t index;
  let t0 = Telemetry.now () in
  let d = runner t in
  Metrics.observe h_stage2 (Telemetry.now () -. t0);
  d

let count_survivors survive =
  let surv = Array.fold_left (fun a b -> if b then a + 1 else a) 0 survive in
  Metrics.incr ~by:surv m_survivors;
  Metrics.incr ~by:(Array.length survive - surv) m_pruned

let sort_hits hits =
  Array.sort
    (fun a b ->
      match Bigint.compare a.distance b.distance with
      | 0 -> Stdlib.compare a.index b.index
      | c -> c)
    hits;
  hits

let partition_candidates t (s : Protocol.spec) lengths =
  let m = Client.client_length t in
  let can_prune = prunable_spec s in
  let prunable = ref [] and unprunable = ref [] in
  Array.iteri
    (fun i len ->
      if can_prune && len = m then prunable := i :: !prunable
      else unprunable := i :: !unprunable)
    lengths;
  (List.rev !prunable, List.rev !unprunable)

let rec split_at n = function
  | rest when n <= 0 -> ([], rest)
  | [] -> ([], [])
  | x :: tl ->
    let taken, rest = split_at (n - 1) tl in
    (x :: taken, rest)

let top_k ?segments ?budget ?candidate_budget_s ~spec:(s : Protocol.spec) ~k t =
  if k <= 0 then invalid_arg "Query.top_k: k must be positive";
  let runner = Protocol.runner_of_spec s in
  Client.require_plan t s.Protocol.algo;
  let m = Client.client_length t in
  let segments =
    match segments with
    | None -> default_segments m
    | Some s ->
      check_segments ~segments:s ~m;
      s
  in
  let guard, incomplete_of, restore_budget =
    budget_guard ?budget ?candidate_budget_s t
  in
  Fun.protect ~finally:restore_budget @@ fun () ->
  let ids, lengths = Client.catalog_list t in
  let total = Array.length ids in
  Metrics.incr m_submitted;
  Metrics.incr ~by:total m_candidates;
  let prunable, unprunable = partition_candidates t s lengths in
  let evaluated = ref 0 and pruned = ref 0 in
  let results = ref [] in
  let eval i =
    match guard i (fun () -> eval_exact t runner evaluated i) with
    | Some d -> results := (i, d) :: !results
    | None -> ()
  in
  (* Every unprunable candidate must be evaluated exactly anyway; their
     distances double as threshold seeds. *)
  List.iter eval unprunable;
  (* Seed the threshold: exact runs on leading prunable candidates until
     k distances are known. *)
  let seeds, rest = split_at (k - List.length !results) prunable in
  List.iter eval seeds;
  (match rest with
   | [] -> ()
   | rest ->
     if List.length !results < k then
       (* Seed shortfall — some seeds came back incomplete, so there is
          no sound threshold to prune against.  Degrade to the
          exhaustive scan; the per-candidate guard still applies. *)
       List.iter eval rest
     else begin
       let distances =
         List.map snd !results |> List.sort Bigint.compare |> Array.of_list
       in
       let tau = distances.(k - 1) in
       let indices = Array.of_list rest in
       let survive = prune_round_safe t s ~segments ~tau ~indices in
       count_survivors survive;
       Array.iteri
         (fun j i -> if survive.(j) then eval i else incr pruned)
         indices
     end);
  let hits =
    !results
    |> List.map (fun (i, d) -> { index = i; id = ids.(i); distance = d })
    |> Array.of_list |> sort_hits
  in
  let hits = Array.sub hits 0 (Stdlib.min k (Array.length hits)) in
  {
    hits;
    total;
    evaluated = !evaluated;
    pruned = !pruned;
    incomplete = incomplete_of ids;
  }

let within ?segments ?budget ?candidate_budget_s ~spec:(s : Protocol.spec)
    ~radius t =
  if Bigint.compare radius Bigint.zero < 0 then
    invalid_arg "Query.within: radius must be non-negative";
  let runner = Protocol.runner_of_spec s in
  Client.require_plan t s.Protocol.algo;
  let m = Client.client_length t in
  let segments =
    match segments with
    | None -> default_segments m
    | Some s ->
      check_segments ~segments:s ~m;
      s
  in
  let guard, incomplete_of, restore_budget =
    budget_guard ?budget ?candidate_budget_s t
  in
  Fun.protect ~finally:restore_budget @@ fun () ->
  let ids, lengths = Client.catalog_list t in
  let total = Array.length ids in
  Metrics.incr m_submitted;
  Metrics.incr ~by:total m_candidates;
  let prunable, unprunable = partition_candidates t s lengths in
  let evaluated = ref 0 and pruned = ref 0 in
  let results = ref [] in
  let eval i =
    match guard i (fun () -> eval_exact t runner evaluated i) with
    | Some d when Bigint.compare d radius <= 0 -> results := (i, d) :: !results
    | Some _ | None -> ()
  in
  List.iter eval unprunable;
  (match prunable with
   | [] -> ()
   | prunable ->
     let indices = Array.of_list prunable in
     let survive = prune_round_safe t s ~segments ~tau:radius ~indices in
     count_survivors survive;
     Array.iteri
       (fun j i -> if survive.(j) then eval i else incr pruned)
       indices);
  let hits =
    !results
    |> List.map (fun (i, d) -> { index = i; id = ids.(i); distance = d })
    |> Array.of_list |> sort_hits
  in
  {
    hits;
    total;
    evaluated = !evaluated;
    pruned = !pruned;
    incomplete = incomplete_of ids;
  }

(* In-process conveniences, mirroring [Protocol.run]: stand up a
   store-backed server on a loopback channel and drive a query against
   it. *)

let with_query_session ~(s : Protocol.spec) ?(params = Params.default) ?seed
    ?max_value ?decryption ?offline ?(jobs = 1) ~x ~store f =
  let rng_of suffix =
    match seed with
    | Some s -> Secure_rng.of_seed_string (s ^ "/" ^ suffix)
    | None -> Secure_rng.system ()
  in
  let server_rng = rng_of "server" and client_rng = rng_of "client" in
  let bound =
    match max_value with
    | Some v -> v
    | None ->
      Stdlib.max 1 (Stdlib.max (Series.max_abs_value x) (Store.max_abs_value store))
  in
  let workers = Parallel.create jobs in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown workers)
    (fun () ->
      let server =
        Server.of_store ~params ?decryption ~workers ~rng:server_rng ~store
          ~max_value:bound ()
      in
      let channel = Channel.local (Server.handle server) in
      let client =
        Client.connect ~params ?offline ~packing:s.Protocol.packing ~query:true
          ~workers ~rng:client_rng ~series:x ~max_value:bound
          ~distance:s.Protocol.algo channel
      in
      let result = f client in
      Client.finish client;
      (result, Channel.stats channel))

let run_top_k ~spec ?segments ?budget ?candidate_budget_s ?params ?seed
    ?max_value ?decryption ?offline ?jobs ~k ~x ~store () =
  with_query_session ~s:spec ?params ?seed ?max_value ?decryption ?offline
    ?jobs ~x ~store (fun client ->
      top_k ?segments ?budget ?candidate_budget_s ~spec ~k client)

let run_within ~spec ?segments ?budget ?candidate_budget_s ?params ?seed
    ?max_value ?decryption ?offline ?jobs ~radius ~x ~store () =
  with_query_session ~s:spec ?params ?seed ?max_value ?decryption ?offline
    ?jobs ~x ~store (fun client ->
      within ?segments ?budget ?candidate_budget_s ~spec ~radius client)
