(** Cost-attribution ledger: the paper's closed-form cost predictions
    ({!Protocol.expected_values_transferred},
    {!Protocol.expected_query_values}) checked against actual wire
    accounting ({!Stats} value counts) at the end of each instrumented
    workload.  The protocols have exactly-predictable value counts, so
    nonzero drift is both a correctness and a leakage signal; the
    [ledger.drift.events] counter trips on every divergence.

    A leaf module: callers compute both sides and hand in plain
    integers. *)

type workload = Pairwise | Query

type entry = {
  workload : workload;
  predicted_values : int;
  actual_values : int;
}

val drift : entry -> int
(** [actual - predicted]; [0] when the run matched the model. *)

val record : workload:workload -> predicted:int -> actual:int -> entry
(** Count the check into the [ledger.*] metrics ([ledger.checks],
    per-workload counters, [ledger.drift.events]/[ledger.drift.values]
    on divergence), emit a [ledger.check] trace point and remember the
    entry. *)

val recent : unit -> entry list
(** Most recent entries first, bounded (64). *)

val drift_events : unit -> int
(** Lifetime count of checks that diverged. *)
