open Import

type t = {
  records : Series.t array;
  ids : string array;
  mutable selected : int;
  sk : Paillier.private_key;
  rng : Secure_rng.t;
  max_value : int;
  ops : Cost.ops;
  mutable reveals : int;
  max_reveals : int option;
  decrypt : Paillier.private_key -> Paillier.ciphertext -> Bigint.t;
  decryption : [ `Standard | `Crt ];
  workers : Parallel.t;
  mutable noise : Paillier.noise_gen option;
      (* lazily built fast-noise table for packed-reply re-encryptions;
         one full-width exponentiation amortized over the session *)
}

let check_bounds series max_value =
  let len = Series.length series and d = Series.dimension series in
  for i = 0 to len - 1 do
    let e = Series.get series i in
    for l = 0 to d - 1 do
      if e.(l) < 0 || e.(l) > max_value then
        invalid_arg
          (Printf.sprintf "Server: coordinate %d of element %d is %d, outside [0, %d]"
             l i e.(l) max_value)
    done
  done

let create_db_with_key ?(decryption = `Standard) ?(workers = Parallel.sequential)
    ?max_reveals ?ids ~sk ~rng ~records ~max_value () =
  if Array.length records = 0 then invalid_arg "Server: empty record set";
  let dim = Series.dimension records.(0) in
  Array.iter
    (fun series ->
      if Series.dimension series <> dim then
        invalid_arg "Server: records have differing dimensions";
      check_bounds series max_value)
    records;
  let ids =
    match ids with
    | None -> Array.init (Array.length records) string_of_int
    | Some ids ->
      if Array.length ids <> Array.length records then
        invalid_arg "Server: ids and records length mismatch";
      ids
  in
  let decrypt =
    match decryption with
    | `Standard -> Paillier.decrypt
    | `Crt -> Paillier.decrypt_crt
  in
  (match max_reveals with
   | Some limit when limit <= 0 ->
     invalid_arg "Server: max_reveals must be positive"
   | _ -> ());
  {
    records;
    ids;
    selected = 0;
    sk;
    rng;
    max_value;
    ops = { encryptions = 0; decryptions = 0; homomorphic = 0 };
    reveals = 0;
    max_reveals;
    decrypt;
    decryption;
    workers;
    noise = None;
  }

let create_with_key ?decryption ?workers ?max_reveals ~sk ~rng ~series ~max_value () =
  create_db_with_key ?decryption ?workers ?max_reveals ~sk ~rng ~records:[| series |]
    ~max_value ()

let create_db ?(params = Params.default) ?decryption ?workers ?max_reveals ?ids ~rng
    ~records ~max_value () =
  let _pk, sk = Paillier.keygen ~bits:params.Params.key_bits rng in
  create_db_with_key ?decryption ?workers ?max_reveals ?ids ~sk ~rng ~records
    ~max_value ()

let of_store ?params ?decryption ?workers ?max_reveals ~rng ~store ~max_value () =
  create_db ?params ?decryption ?workers ?max_reveals ~ids:(Store.ids store) ~rng
    ~records:(Store.records store) ~max_value ()

let of_store_with_key ?decryption ?workers ?max_reveals ~sk ~rng ~store ~max_value () =
  create_db_with_key ?decryption ?workers ?max_reveals ~ids:(Store.ids store) ~sk ~rng
    ~records:(Store.records store) ~max_value ()

let create ?params ?decryption ?workers ?max_reveals ~rng ~series ~max_value () =
  create_db ?params ?decryption ?workers ?max_reveals ~rng ~records:[| series |]
    ~max_value ()

let public_key t = t.sk.Paillier.public
let private_key t = t.sk
let ops t = t.ops
let reveal_count t = t.reveals
let record_count t = Array.length t.records
let selected t = t.selected
let active_series t = t.records.(t.selected)

(* Decryption fan-out: the worker count never touches the server's rng
   stream (decryption is deterministic), so replies are bit-identical at
   any pool size. *)
let decrypt_batch t cs =
  t.ops.decryptions <- t.ops.decryptions + Array.length cs;
  match t.decryption with
  | `Standard -> Paillier.decrypt_batch ~workers:t.workers t.sk cs
  | `Crt -> Paillier.decrypt_crt_batch ~workers:t.workers t.sk cs

(* Phase 1 payload: for every element y_j, Enc(Σ_l y_jl²) and each
   Enc(y_jl) — the one-way transfer of Section 3.2.  Flattened into one
   batch so the encryptions fan out; the flat order matches the
   sequential per-element order, keeping the rng stream unchanged. *)
let phase1_elements t =
  let series = active_series t in
  let d = Series.dimension series in
  let n = Series.length series in
  let plains = Array.make (n * (d + 1)) Bigint.zero in
  for j = 0 to n - 1 do
    let y = Series.get series j in
    let sum_sq = ref 0 in
    for l = 0 to d - 1 do
      sum_sq := !sum_sq + (y.(l) * y.(l))
    done;
    plains.((j * (d + 1))) <- Bigint.of_int !sum_sq;
    for l = 0 to d - 1 do
      plains.((j * (d + 1)) + 1 + l) <- Bigint.of_int y.(l)
    done
  done;
  t.ops.encryptions <- t.ops.encryptions + (n * (d + 1));
  let encs = Paillier.encrypt_batch_sk ~workers:t.workers t.sk t.rng plains in
  Array.init n (fun j ->
      {
        Message.sum_sq = Paillier.ciphertext_to_bigint encs.(j * (d + 1));
        coords =
          Array.init d (fun l ->
              Paillier.ciphertext_to_bigint encs.((j * (d + 1)) + 1 + l));
      })

(* Decrypt every candidate, select by [better], and return a *fresh*
   encryption of the selected plaintext (path hiding, Section 5.5). *)
exception Bad_candidates of string

(* Hostile-input boundary: everything the client ships into the decrypt
   path goes through the strict validator (range AND gcd(c,n)=1), so a
   garbage value is a typed [Bad_candidates] — answered in-band as
   Error_reply — and never reaches a CRT exponentiation. *)
let wrap_candidates pk (candidates : Bigint.t array) =
  if Array.length candidates < 2 then raise (Bad_candidates "need at least two candidates");
  match Array.map (Paillier.validate_ciphertext pk) candidates with
  | cs -> cs
  | exception Paillier.Invalid_ciphertext m -> raise (Bad_candidates m)

let fold_better ~better (plains : Bigint.t array) lo len =
  let best = ref plains.(lo) in
  for i = lo + 1 to lo + len - 1 do
    if better plains.(i) !best then best := plains.(i)
  done;
  !best

let extreme_of t ~better (candidates : Bigint.t array) =
  let pk = public_key t in
  let cs = wrap_candidates pk candidates in
  let plains = decrypt_batch t cs in
  let extreme = fold_better ~better plains 0 (Array.length plains) in
  t.ops.encryptions <- t.ops.encryptions + 1;
  Paillier.ciphertext_to_bigint (Paillier.encrypt_sk t.sk t.rng extreme)

let select_extreme t ~better candidates =
  match extreme_of t ~better candidates with
  | v -> Message.Cipher_reply v
  | exception Bad_candidates m -> Message.Error_reply m

(* Wavefront extension: many independent instances in one round trip.
   All sets are validated up front, decrypted as ONE flat batch (better
   load balance than per-set fan-out when sets are small), then the
   per-set extremes are re-encrypted as one batch.  The re-encryption
   rng draws happen in set order, exactly as the sequential loop's. *)
let select_extreme_batch t ~better (sets : Bigint.t array array) =
  if Array.length sets = 0 then Message.Error_reply "empty batch"
  else begin
    let pk = public_key t in
    match Array.map (wrap_candidates pk) sets with
    | exception Bad_candidates m -> Message.Error_reply m
    | wrapped ->
      let flat = Array.concat (Array.to_list wrapped) in
      let plains = decrypt_batch t flat in
      let extremes = Array.make (Array.length wrapped) Bigint.zero in
      let off = ref 0 in
      Array.iteri
        (fun s cs ->
          let len = Array.length cs in
          extremes.(s) <- fold_better ~better plains !off len;
          off := !off + len)
        wrapped;
      t.ops.encryptions <- t.ops.encryptions + Array.length extremes;
      let encs = Paillier.encrypt_batch_sk ~workers:t.workers t.sk t.rng extremes in
      Message.Batch_cipher_reply (Array.map Paillier.ciphertext_to_bigint encs)
  end

(* Packing extension: the flattened candidate slots of many instances
   arrive [capacity] to a ciphertext, so the whole batch costs
   [ceil(total/capacity)] decryptions instead of [total].  Replies are
   re-encrypted through the cached subgroup noise generator — fresh
   noise per reply at a table-walk's cost (this is the packed/fast
   profile; see SECURITY.md on the subgroup caveat). *)
let noise_gen t =
  match t.noise with
  | Some g -> g
  | None ->
    let g = Paillier.noise_gen_create (public_key t) t.rng in
    t.noise <- Some g;
    g

let select_extreme_packed t ~better ~slot_bits ~counts ~(packed : Bigint.t array) =
  let pk = public_key t in
  match
    if slot_bits <= 0 || slot_bits >= pk.Paillier.bits then
      raise (Bad_candidates "packed slot width out of range for this key");
    let capacity = Paillier.pack_capacity pk ~slot_bits in
    if Array.length counts = 0 then raise (Bad_candidates "empty packed batch");
    Array.iter
      (fun k -> if k < 2 then raise (Bad_candidates "need at least two candidates"))
      counts;
    let total = Array.fold_left ( + ) 0 counts in
    let expected = (total + capacity - 1) / capacity in
    if Array.length packed <> expected then
      raise
        (Bad_candidates
           (Printf.sprintf "expected %d packed ciphertexts for %d slots, got %d"
              expected total (Array.length packed)));
    (match Array.map (Paillier.validate_ciphertext pk) packed with
     | cs -> (capacity, total, cs)
     | exception Paillier.Invalid_ciphertext m -> raise (Bad_candidates m))
  with
  | exception Bad_candidates m -> Message.Error_reply m
  | capacity, total, cs ->
    let plains = decrypt_batch t cs in
    let slots = Array.make total Bigint.zero in
    Array.iteri
      (fun i p ->
        let lo = i * capacity in
        let len = min capacity (total - lo) in
        Array.blit (Paillier.unpack_plain ~slot_bits ~count:len p) 0 slots lo len)
      plains;
    let extremes = Array.make (Array.length counts) Bigint.zero in
    let off = ref 0 in
    Array.iteri
      (fun s k ->
        extremes.(s) <- fold_better ~better slots !off k;
        off := !off + k)
      counts;
    t.ops.encryptions <- t.ops.encryptions + Array.length extremes;
    let g = noise_gen t in
    let encs =
      Array.map
        (fun m -> Paillier.encrypt_with_rn pk ~rn:(Paillier.noise_gen_rn g pk t.rng) m)
        extremes
    in
    Message.Batch_cipher_reply (Array.map Paillier.ciphertext_to_bigint encs)

(* Catalog extension: encrypted pruning sketches.  For each requested
   record the per-segment coupling-window extremes
   (Lower_bound.segment_bounds) are encrypted coordinate-wise —
   candidate-major, all Lo (segment-major, dimension-minor) then all Hi
   — as one flat batch, so the rng stream matches a sequential loop and
   the encryptions fan out across the worker pool. *)
let query_sketches t ~segments ~band ~indices =
  let nrec = Array.length t.records in
  if Array.length indices = 0 then raise (Bad_candidates "empty candidate set");
  if segments <= 0 then raise (Bad_candidates "segments must be positive");
  (match band with
  | Some b when b < 0 -> raise (Bad_candidates "negative band")
  | _ -> ());
  Array.iter
    (fun i ->
      if i < 0 || i >= nrec then
        raise (Bad_candidates (Printf.sprintf "record %d out of range [0, %d)" i nrec));
      if segments > Series.length t.records.(i) then
        raise
          (Bad_candidates
             (Printf.sprintf "%d segments exceed record %d length %d" segments i
                (Series.length t.records.(i)))))
    indices;
  let d = Series.dimension t.records.(0) in
  let per = segments * d in
  let plains = Array.make (Array.length indices * 2 * per) Bigint.zero in
  Array.iteri
    (fun c i ->
      let lo, hi = Lower_bound.segment_bounds ~segments ~band t.records.(i) in
      for s = 0 to segments - 1 do
        for l = 0 to d - 1 do
          plains.((c * 2 * per) + (s * d) + l) <- Bigint.of_int lo.(s).(l);
          plains.((c * 2 * per) + per + (s * d) + l) <- Bigint.of_int hi.(s).(l)
        done
      done)
    indices;
  t.ops.encryptions <- t.ops.encryptions + Array.length plains;
  let encs = Paillier.encrypt_batch_sk ~workers:t.workers t.sk t.rng plains in
  Array.init (Array.length indices) (fun c ->
      {
        Message.lo =
          Array.init per (fun j ->
              Paillier.ciphertext_to_bigint encs.((c * 2 * per) + j));
        hi =
          Array.init per (fun j ->
              Paillier.ciphertext_to_bigint encs.((c * 2 * per) + per + j));
      })

(* Catalog extension: the verdict round.  Each candidate arrives as a
   multiplicatively blinded threshold difference Enc(ρ·(G - τ_G - 1) + μ);
   only the sign of the plaintext (encoded as wrap-around past n/2) is
   disclosed — survive when negative, prune when non-negative. *)
let verdicts t (blinded : Bigint.t array) =
  if Array.length blinded = 0 then raise (Bad_candidates "empty verdict set");
  let pk = public_key t in
  let cs =
    match Array.map (Paillier.validate_ciphertext pk) blinded with
    | cs -> cs
    | exception Paillier.Invalid_ciphertext m -> raise (Bad_candidates m)
  in
  let plains = decrypt_batch t cs in
  let half = Bigint.shift_right pk.Paillier.n 1 in
  Array.map (fun p -> Bigint.compare p half > 0) plains

(* Session-state codec for cross-worker failover.  Only protocol-visible
   state travels: the selected record index, the reveal count, and the
   crypto-op counters (so merged Cost accounting survives a worker
   death).  The key, records, worker pool, and noise cache are the
   restoring process's own configuration; the rng stream position is
   deliberately not captured — server randomness cancels at decryption,
   so replies re-encrypted under a fresh stream decrypt to the same
   plaintexts (asserted by the failover chaos tests). *)

let export_state t =
  let w = Wire.writer () in
  Wire.put_u32 w t.selected;
  Wire.put_u32 w t.reveals;
  Wire.put_u32 w t.ops.encryptions;
  Wire.put_u32 w t.ops.decryptions;
  Wire.put_u32 w t.ops.homomorphic;
  Wire.contents w

let restore_state t blob =
  let r = Wire.reader blob in
  let selected = Wire.get_u32 r in
  let reveals = Wire.get_u32 r in
  let encryptions = Wire.get_u32 r in
  let decryptions = Wire.get_u32 r in
  let homomorphic = Wire.get_u32 r in
  Wire.expect_end r;
  if selected >= Array.length t.records then
    raise
      (Wire.Malformed
         (Printf.sprintf "Server.restore_state: record %d out of range [0, %d)"
            selected (Array.length t.records)));
  t.selected <- selected;
  t.reveals <- reveals;
  t.ops.encryptions <- encryptions;
  t.ops.decryptions <- decryptions;
  t.ops.homomorphic <- homomorphic

let handle t (req : Message.request) : Message.reply =
  let pk = public_key t in
  match req with
  | Message.Hello { flags; _ } ->
    (* the core handler grants no *transport* capabilities: flag
       negotiation (CRC, resume) belongs to the serving loop, which
       rewrites this Welcome with its grant and token (Server_loop).
       Packing and catalog search are application capabilities, so they
       are granted here and preserved by the loop's rewrite. *)
    Message.Welcome
      {
        n = pk.Paillier.n;
        key_bits = pk.Paillier.bits;
        series_length = Series.length (active_series t);
        dimension = Series.dimension (active_series t);
        max_value = t.max_value;
        flags = flags land (Message.flag_packing lor Message.flag_catalog);
        resume_token = "";
      }
  | Message.Catalog_request ->
    Message.Catalog_reply (Array.map Series.length t.records)
  | Message.Catalog_list_request ->
    Message.Catalog_list_reply
      { ids = Array.copy t.ids; lengths = Array.map Series.length t.records }
  | Message.Query_submit { segments; band; indices } -> (
    match query_sketches t ~segments ~band ~indices with
    | sketches -> Message.Query_sketch sketches
    | exception Bad_candidates m -> Message.Error_reply m)
  | Message.Verdict_request blinded -> (
    match verdicts t blinded with
    | survive -> Message.Verdict_reply survive
    | exception Bad_candidates m -> Message.Error_reply m)
  | Message.Select_request i ->
    if i < 0 || i >= Array.length t.records then
      Message.Error_reply
        (Printf.sprintf "record %d out of range [0, %d)" i (Array.length t.records))
    else begin
      t.selected <- i;
      Message.Select_ack i
    end
  | Message.Phase1_request -> Message.Phase1_reply (phase1_elements t)
  | Message.Min_request candidates ->
    select_extreme t ~better:(fun a b -> Bigint.compare a b < 0) candidates
  | Message.Max_request candidates ->
    select_extreme t ~better:(fun a b -> Bigint.compare a b > 0) candidates
  | Message.Batch_min_request sets ->
    select_extreme_batch t ~better:(fun a b -> Bigint.compare a b < 0) sets
  | Message.Batch_max_request sets ->
    select_extreme_batch t ~better:(fun a b -> Bigint.compare a b > 0) sets
  | Message.Packed_min_request { slot_bits; counts; packed } ->
    select_extreme_packed t
      ~better:(fun a b -> Bigint.compare a b < 0)
      ~slot_bits ~counts ~packed
  | Message.Packed_max_request { slot_bits; counts; packed } ->
    select_extreme_packed t
      ~better:(fun a b -> Bigint.compare a b > 0)
      ~slot_bits ~counts ~packed
  | Message.Reveal_request v -> begin
    match t.max_reveals with
    | Some limit when t.reveals >= limit ->
      Message.Error_reply
        (Printf.sprintf "reveal budget exhausted (%d allowed per session)" limit)
    | _ -> begin
      match Paillier.validate_ciphertext pk v with
      | exception Paillier.Invalid_ciphertext m -> Message.Error_reply m
      | c ->
        t.ops.decryptions <- t.ops.decryptions + 1;
        t.reveals <- t.reveals + 1;
        Message.Reveal_reply (t.decrypt t.sk c)
    end
  end
  (* In-process servers answer with the process-wide registry; a TCP
     daemon's Server_loop intercepts Stats_req before it reaches here and
     prefixes its own live session counters. *)
  | Message.Stats_req -> Message.Stats_reply (Metrics.dump_string ())
  (* Same story for the OpenMetrics page: the TCP daemon's Server_loop
     answers (and capability-gates) this itself; in-process sessions get
     the process-wide registry + rollups directly. *)
  | Message.Metrics_req ->
    Message.Metrics_reply (Exposition.render ~rollup:(Rollup.global ()) ())
  (* An in-process / single-session server is ready by definition; the
     TCP daemon's Server_loop answers this itself with live capacity. *)
  | Message.Health_req ->
    Message.Health_reply { status = 0; active = 0; capacity = 1; retry_after_s = 0.0 }
  (* Resume is a transport concern (Server_loop intercepts it before the
     handler); reaching the core handler means nobody retains state. *)
  | Message.Resume _ ->
    Message.Resume_reject { reason = "this endpoint does not retain session state" }
  (* An in-process server sends 0: Channel.local times the handler
     itself; TCP servers report via Channel.serve_once instead. *)
  | Message.Bye -> Message.Bye_ack { server_seconds = 0.0 }
