(** Secure 1-vs-N catalog search: query-centric entry points over a
    server-side series store.

    Where {!Protocol.run} compares one client series against one server
    series, a query compares it against {e every} record of a server
    catalog — with a privacy-preserving pruning stage so most candidates
    never pay the quadratic exact protocol:

    + {b Stage 1 (pruning).}  For each candidate of the query's length,
      the server ships an encrypted per-segment sketch of the record's
      coupling-window extremes ({!Lower_bound.segment_bounds}).  The
      client assembles, per segment and dimension, a three-way secure
      maximum [max(S_x - w*Hi, w*Lo - S_x, 0)] (shifted to stay
      non-negative), sums the maxima homomorphically into the encrypted
      gap statistic [Enc(G)] ({!Lower_bound.gap_sum} under encryption),
      and a blinded sign test against the threshold discards candidates
      with [G >= tau_G + 1] where [tau_G = isqrt(c_f * tau)].  Since the
      true squared distance satisfies [D >= G^2 / c_f] (with
      [c_f = d*m] for DTW / banded DTW / Euclidean and [(d*m)^2] for
      DFD), a discarded candidate provably has [D > tau]: pruning never
      changes the result ({e no false dismissals}).
    + {b Stage 2 (exact).}  Survivors — plus every candidate the bound
      does not cover (ERP, length mismatches) — run the exact secure
      protocol of the query's {!Protocol.spec}, one
      {!Client.select_record} switch per candidate.

    The leakage of the extra stage is one survive/discard bit per
    candidate on the server side and nothing on the client side beyond
    the exactly-evaluated distances; see SECURITY.md for the analysis
    and PROTOCOL.md section 12 for the wire messages.

    Requires a catalog-capable session: connect with [~query:true]
    ({!Client.connect}) to a server that grants
    {!Message.flag_catalog}.  The convenience wrappers {!run_top_k} and
    {!run_within} stand up both parties in-process, like
    {!Protocol.run}. *)

open Import

type hit = {
  index : int;  (** catalog position, as used by {!Client.select_record} *)
  id : string;  (** the record's catalog id *)
  distance : Bigint.t;  (** exact secure distance (squared, as always) *)
}

type incomplete_reason =
  | Deadline  (** a wall budget ({!top_k}'s [?budget] /
                  [?candidate_budget_s]) or frame deadline expired *)
  | Retries  (** the transport retry budget ran out (connection lost,
                 server busy, circuit open, ...) *)
  | Server_error of string  (** the server answered with an error *)

val reason_to_string : incomplete_reason -> string
(** Stable lowercase rendering ("deadline", "retries",
    "server-error: <msg>") for logs and CLI summaries. *)

type incomplete = {
  index : int;  (** catalog position of the skipped candidate *)
  id : string;  (** its catalog id *)
  reason : incomplete_reason;
}

type report = {
  hits : hit array;  (** ascending distance, ties by index *)
  total : int;  (** catalog size *)
  evaluated : int;  (** exact protocol runs paid (including failed
                        attempts recorded in [incomplete]) *)
  pruned : int;  (** candidates discarded by the secure lower bound *)
  incomplete : incomplete array;
      (** candidates that could {e not} be resolved — skipped on a
          transport failure or an expired budget, ascending index.
          Empty on a fully-successful query.  [hits] is exactly the
          result of the same query over the catalog {e minus} these
          candidates; callers needing all-or-nothing semantics must
          check this field. *)
}

val top_k :
  ?segments:int ->
  ?budget:Ppst_transport.Retry.Budget.t ->
  ?candidate_budget_s:float ->
  spec:Protocol.spec ->
  k:int ->
  Client.t ->
  report
(** The [k] nearest catalog records to the client's series under the
    spec's distance.  Exact protocol runs are paid for every
    non-prunable candidate, the first seeds needed to establish the
    threshold, and every pruning survivor; [hits] is bit-identical to
    the exhaustive scan's [k] best (ascending distance, ties by index).
    [segments] (default [min 8 m]) sizes the sketch; more segments
    prune harder but cost more per candidate.

    {b Degraded mode.}  A candidate whose exact run fails on a
    transport-class error (lost connection after the retry budget,
    server error reply, expired deadline) is skipped and recorded in
    [incomplete] instead of failing the query; a failed stage-1 pruning
    round degrades to the exhaustive scan (sound — pruning is only an
    optimisation).  [?budget] is the wall budget for the whole query: it
    is installed on the client's channel for the duration (bounding
    every round and recovery, see {!Channel.set_budget}) and once it
    expires the remaining candidates are marked [Deadline] without
    further wire traffic.  [?candidate_budget_s] bounds each single
    candidate's exact run (clamped to the remaining whole-query budget
    when both are set), so one black-holed candidate cannot starve the
    rest.

    @raise Invalid_argument if [k <= 0], [segments] is outside
    [\[1, m\]], [candidate_budget_s <= 0], or the spec is inconsistent
    ({!Protocol.run}'s rules).
    @raise Channel.Protocol_error without the catalog capability. *)

val within :
  ?segments:int ->
  ?budget:Ppst_transport.Retry.Budget.t ->
  ?candidate_budget_s:float ->
  spec:Protocol.spec ->
  radius:Bigint.t ->
  Client.t ->
  report
(** Every catalog record within squared distance [radius] of the
    client's series.  One pruning round over all equal-length
    candidates with [tau = radius], then exact runs on the rest.
    Degraded mode ([?budget], [?candidate_budget_s], [incomplete]) as
    {!top_k}.
    @raise Invalid_argument on a negative radius (and as {!top_k}). *)

(** {1 In-process conveniences} *)

val run_top_k :
  spec:Protocol.spec ->
  ?segments:int ->
  ?budget:Ppst_transport.Retry.Budget.t ->
  ?candidate_budget_s:float ->
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  k:int ->
  x:Series.t ->
  store:Store.t ->
  unit ->
  report * Stats.t
(** Stand up a store-backed {!Server} on a loopback channel, connect a
    catalog-capable client for [x], and run {!top_k}.  Options as
    {!Protocol.run}; [max_value] defaults to the larger of the two
    sides' actual coordinate bounds.  Also returns the channel's wire
    accounting. *)

val run_within :
  spec:Protocol.spec ->
  ?segments:int ->
  ?budget:Ppst_transport.Retry.Budget.t ->
  ?candidate_budget_s:float ->
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  radius:Bigint.t ->
  x:Series.t ->
  store:Store.t ->
  unit ->
  report * Stats.t
