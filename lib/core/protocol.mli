(** One-call entry points: run a complete secure-distance session with
    both parties in this process, over the accounted loopback channel.

    This is the quickest way to use the library:

    {[
      let x = Series.of_list [3; 4; 5; 4; 6; 7]
      and y = Series.of_list [2; 4; 6; 5; 7] in
      let r = Protocol.run_dtw ~x ~y () in
      Printf.printf "secure DTW distance = %d\n" (Bigint.to_int_exn r.distance)
    ]}

    For a real two-machine deployment use the [bin/ppst_server] and
    [bin/ppst_client] executables (TCP), which drive exactly the same
    {!Client}/{!Server} code. *)

open Import

type result = {
  distance : Bigint.t;  (** the jointly revealed distance value *)
  cost : Cost.t;  (** per-party, per-phase work and time *)
  stats : Stats.t;  (** bytes/values/rounds over the wire *)
  session : Params.session;  (** the masking parameters that were used *)
}

val distance_int : result -> int
(** The distance as a native int.
    @raise Failure if it does not fit (cannot happen for valid params). *)

val run_dtw :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  ?trace:Trace.t ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
(** Secure DTW between client series [x] and server series [y].
    [seed] makes the run deterministic (tests/benches); omitted, both
    parties draw from [/dev/urandom].  [max_value] overrides the
    advertised coordinate bound (default: the actual maximum of each
    party's series).  [decryption] picks the server's decryption path
    (see {!Server.create}); [offline] toggles the client's randomness
    precomputation (see {!Client.connect}); [jobs] (default 1) sizes the
    Domain worker pool both parties share for their Paillier fan-outs —
    a seeded run's transcript and revealed distance are bit-identical at
    any [jobs] value (see {!Client.connect} for the determinism
    contract); [trace] records per-round message sizes for {!Netsim}
    replay. *)

val run_dfd :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result

val run_erp :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  gap:int array ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
(** Secure ERP with the public gap element [gap] (see {!Secure_erp}). *)

val run_dtw_banded :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  ?trace:Trace.t ->
  band:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
(** Secure Sakoe–Chiba banded DTW (see {!Secure_dtw_banded}).
    @raise Secure_dtw_banded.Band_too_narrow when no path fits. *)

val run_dfd_banded :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  ?trace:Trace.t ->
  band:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
(** Band-constrained secure Discrete Fréchet Distance
    (see {!Secure_dtw_banded.run_dfd}). *)

val run_euclidean :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
(** Secure lockstep squared Euclidean distance (equal lengths). *)

val run_dtw_wavefront :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  ?trace:Trace.t ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
(** Secure DTW with anti-diagonal batching: identical result and leakage
    profile, [m + n - 3] round trips instead of [(m-1)(n-1)]
    (see {!Secure_dtw_wavefront}). *)

val run_dfd_wavefront :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result

type windows_result = {
  window_distances : Bigint.t array;  (** one per window offset *)
  windows_cost : Cost.t;
  windows_stats : Stats.t;
}

val run_subsequence :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  windows_result
(** Secure subsequence matching: Euclidean distance of server series [y]
    against every window of client series [x]
    (see {!Secure_euclidean.sliding_windows}). *)

val expected_values_transferred :
  params:Params.t -> m:int -> n:int -> d:int -> [ `Dtw | `Dfd ] -> int
(** The paper's Section 5.2 communication formula — [mn(d + k + 4)]
    values for DTW — adapted to this implementation's exact message
    layout (border cells and the reveal round included).  Tests assert
    the live accounting matches this closed form. *)
