(** One-call entry points: run a complete secure-distance session with
    both parties in this process, over the accounted loopback channel.

    This is the quickest way to use the library:

    {[
      let x = Series.of_list [3; 4; 5; 4; 6; 7]
      and y = Series.of_list [2; 4; 6; 5; 7] in
      let r = Protocol.run ~spec:(Protocol.spec `Dtw) ~x ~y () in
      Printf.printf "secure DTW distance = %d\n" (Bigint.to_int_exn r.distance)
    ]}

    {!run} is the single engine entry point; the distance, the optional
    Sakoe–Chiba band, and the round-trip strategy are picked by a
    {!spec} value.  For 1-vs-N search over a server catalog, see
    {!Query} — it reuses the same [spec].  The historical per-algorithm
    [run_*] functions remain as deprecated thin wrappers
    (see {!section-legacy}).

    For a real two-machine deployment use the [bin/ppst_server] and
    [bin/ppst_client] executables (TCP), which drive exactly the same
    {!Client}/{!Server} code. *)

open Import

type result = {
  distance : Bigint.t;  (** the jointly revealed distance value *)
  cost : Cost.t;  (** per-party, per-phase work and time *)
  stats : Stats.t;  (** bytes/values/rounds over the wire *)
  session : Params.session;  (** the masking parameters that were used *)
}

val distance_int : result -> int
(** The distance as a native int.
    @raise Failure if it does not fit (cannot happen for valid params). *)

(** {1 The unified engine} *)

type algo = [ `Dtw | `Dfd | `Erp | `Euclidean ]
(** Which secure distance to evaluate.  Same constructors as
    {!Client.distance_kind} (an [algo] coerces directly). *)

type strategy = [ `Full | `Wavefront ]
(** Round-trip strategy.  [`Full] is the paper's cell-at-a-time
    protocol; [`Wavefront] batches each anti-diagonal into one round
    trip ([m + n - 3] rounds instead of [(m-1)(n-1)]), with identical
    results and leakage profile.  Only DTW and DFD have wavefront
    formulations. *)

type spec = {
  algo : algo;
  band : int option;
      (** Sakoe–Chiba band radius; only meaningful for [`Dtw]/[`Dfd]. *)
  strategy : strategy;
  gap : int array option;
      (** ERP's public gap element; required iff [algo = `Erp]. *)
  packing : bool;
      (** Offer the plaintext-packing capability (see {!Client.connect}).
          Packed runs reveal the same distances as unpacked ones but not
          the same transcript bytes; default [false]. *)
}
(** A full description of the session to run.  Build with {!spec} or as
    a record literal; either way {!run} validates the combination. *)

val spec :
  ?band:int -> ?strategy:strategy -> ?gap:int array -> ?packing:bool -> algo -> spec
(** [spec `Dtw], [spec ~band:5 `Dfd], [spec ~gap:[|0|] `Erp], ...
    [strategy] defaults to [`Full], [packing] to [false]. *)

val run :
  spec:spec ->
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  ?trace:Trace.t ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
(** Run one complete secure session described by [spec] between client
    series [x] and server series [y].

    [seed] makes the run deterministic (tests/benches); omitted, both
    parties draw from [/dev/urandom].  [max_value] overrides the
    advertised coordinate bound (default: the actual maximum of each
    party's series).  [decryption] picks the server's decryption path
    (see {!Server.create}); [offline] toggles the client's randomness
    precomputation (see {!Client.connect}); [jobs] (default 1) sizes the
    Domain worker pool both parties share for their Paillier fan-outs —
    a seeded run's transcript and revealed distance are bit-identical at
    any [jobs] value (see {!Client.connect} for the determinism
    contract); [trace] records per-round message sizes for {!Netsim}
    replay.

    @raise Invalid_argument on an inconsistent [spec]: [gap] present
    without [`Erp] or absent with it; [band] with [`Erp]/[`Euclidean]
    or combined with [`Wavefront]; [`Wavefront] with
    [`Erp]/[`Euclidean].
    @raise Secure_dtw_banded.Band_too_narrow when a banded run's band
    admits no warping path. *)

val runner_of_spec : spec -> Client.t -> Bigint.t
(** The driver a [spec] denotes, as a function over an already-connected
    client — validation included (same exceptions as {!run}).  {!Query}
    uses this to run the exact stage of a 1-vs-N search on its own
    connection; {!run} is [runner_of_spec] plus session setup. *)

type windows_result = {
  window_distances : Bigint.t array;  (** one per window offset *)
  windows_cost : Cost.t;
  windows_stats : Stats.t;
}

val subsequence :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  windows_result
(** Secure subsequence matching: Euclidean distance of server series [y]
    against every window of client series [x]
    (see {!Secure_euclidean.sliding_windows}). *)

(** {1:legacy Legacy per-algorithm entry points}

    Thin wrappers over {!run}, one per historical [spec] combination.
    Deprecated: prefer [run ~spec:(spec ...)] (or {!subsequence} for the
    sliding-window variant); these remain so existing callers keep
    compiling and will be removed in a future major version.  Each
    preserves its historical signature, which is why some lack
    [?trace]. *)

val run_dtw :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  ?trace:Trace.t ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
  [@@ocaml.deprecated
    "Protocol.run_dtw is deprecated: use run ~spec:(spec `Dtw) instead."]
(** Equivalent to [run ~spec:(spec `Dtw)]; see {!run} for the optional
    arguments. *)

val run_dfd :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
  [@@ocaml.deprecated
    "Protocol.run_dfd is deprecated: use run ~spec:(spec `Dfd) instead."]

val run_erp :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  gap:int array ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
  [@@ocaml.deprecated
    "Protocol.run_erp is deprecated: use run ~spec:(spec ~gap `Erp) instead."]
(** Secure ERP with the public gap element [gap] (see {!Secure_erp}). *)

val run_dtw_banded :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  ?trace:Trace.t ->
  band:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
  [@@ocaml.deprecated
    "Protocol.run_dtw_banded is deprecated: use run ~spec:(spec ~band `Dtw) instead."]
(** Secure Sakoe–Chiba banded DTW (see {!Secure_dtw_banded}).
    @raise Secure_dtw_banded.Band_too_narrow when no path fits. *)

val run_dfd_banded :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  ?trace:Trace.t ->
  band:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
  [@@ocaml.deprecated
    "Protocol.run_dfd_banded is deprecated: use run ~spec:(spec ~band `Dfd) instead."]
(** Band-constrained secure Discrete Fréchet Distance
    (see {!Secure_dtw_banded.run_dfd}). *)

val run_euclidean :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
  [@@ocaml.deprecated
    "Protocol.run_euclidean is deprecated: use run ~spec:(spec `Euclidean) instead."]
(** Secure lockstep squared Euclidean distance (equal lengths). *)

val run_dtw_wavefront :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  ?trace:Trace.t ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
  [@@ocaml.deprecated
    "Protocol.run_dtw_wavefront is deprecated: use run ~spec:(spec ~strategy:`Wavefront `Dtw) instead."]
(** Secure DTW with anti-diagonal batching: identical result and leakage
    profile, [m + n - 3] round trips instead of [(m-1)(n-1)]
    (see {!Secure_dtw_wavefront}). *)

val run_dfd_wavefront :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  result
  [@@ocaml.deprecated
    "Protocol.run_dfd_wavefront is deprecated: use run ~spec:(spec ~strategy:`Wavefront `Dfd) instead."]

val run_subsequence :
  ?params:Params.t ->
  ?seed:string ->
  ?max_value:int ->
  ?decryption:[ `Standard | `Crt ] ->
  ?offline:bool ->
  ?jobs:int ->
  x:Series.t ->
  y:Series.t ->
  unit ->
  windows_result
  [@@ocaml.deprecated
    "Protocol.run_subsequence is deprecated: use subsequence instead."]
(** Secure subsequence matching: Euclidean distance of server series [y]
    against every window of client series [x]
    (see {!Secure_euclidean.sliding_windows}). *)

val expected_values_transferred :
  params:Params.t -> m:int -> n:int -> d:int -> [ `Dtw | `Dfd ] -> int
(** The paper's Section 5.2 communication formula — [mn(d + k + 4)]
    values for DTW — adapted to this implementation's exact message
    layout (border cells and the reveal round included).  Tests assert
    the live accounting matches this closed form. *)

val expected_query_values :
  params:Params.t -> candidates:int -> segments:int -> d:int -> int
(** Closed-form value count for the {e pruning stage} of a 1-vs-N query
    (unpacked profile, both directions): per candidate, per segment, per
    dimension the two sketch ciphertexts, one 3-way secure-max instance
    ([3 + k - 1] masked candidates out, one result back), plus one
    blinded verdict ciphertext per candidate —
    [C*S*d*(k + 5) + C] in total.  The admission ledger's
    [declare_query] allowance ([C*(S*d + 1)] chargeable cells) is sized
    from the same layout; tests pin both numbers against the live
    accounting. *)
