(* Short aliases for the substrate libraries, opened by every module (and
   interface) of the core protocol library. *)

module Bigint = Ppst_bigint.Bigint
module Modular = Ppst_bigint.Modular
module Splitmix = Ppst_bigint.Splitmix
module Secure_rng = Ppst_rng.Secure_rng
module Paillier = Ppst_paillier.Paillier
module Series = Ppst_timeseries.Series
module Distance = Ppst_timeseries.Distance
module Lower_bound = Ppst_timeseries.Lower_bound
module Paa = Ppst_timeseries.Paa
module Store = Ppst_catalog.Store
module Parallel = Ppst_parallel.Pool
module Message = Ppst_transport.Message
module Channel = Ppst_transport.Channel
module Retry = Ppst_transport.Retry
module Stats = Ppst_transport.Stats
module Wire = Ppst_transport.Wire
module Trace = Ppst_transport.Trace
module Netsim = Ppst_transport.Netsim
module Telemetry = Ppst_telemetry.Telemetry
module Metrics = Ppst_telemetry.Metrics
module Rollup = Ppst_telemetry.Rollup
module Exposition = Ppst_telemetry.Exposition
