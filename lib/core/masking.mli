(** Random-offset candidate construction — the client side of the
    secure-minimum (paper Section 5.1) and secure-maximum (Section 6)
    subprotocols.

    For a minimum over ciphertexts [e_1..e_j] the client draws a random
    set [R = {r_min < r_2 < ... < r_k}] from [(2^γ, 2^(γ+1)]], builds
    the candidate multiset

    [{Enc(a_i + r_min)} ∪ {Enc(x_t + r_t)}]   (x_t drawn from the inputs)

    with every offset freshly encrypted (re-randomizing each candidate so
    the holder of the secret key cannot link candidates to ciphertexts it
    has seen before), shuffles it, and remembers [r_min] to unmask the
    reply.  The maximum variant mirrors this with [r_max] the unique
    largest offset. *)

open Import

type prepared = {
  candidates : Paillier.ciphertext array;  (** shuffled, ready to send *)
  unmask : Bigint.t;  (** [r_min] (or [r_max]) to subtract from the reply *)
}

val prepare_min :
  ?encrypt:(Bigint.t -> Paillier.ciphertext) ->
  pk:Paillier.public_key ->
  rng:Ppst_rng.Secure_rng.t ->
  session:Params.session ->
  Paillier.ciphertext array ->
  prepared
(** [prepare_min ~pk ~rng ~session inputs] builds [k + length inputs]
    … candidates ([k - 1] decoys + the masked inputs) for the secure
    minimum of [inputs].  With the paper's three DP predecessors this is
    [k + 2] ciphertexts.
    @raise Invalid_argument when [inputs] is empty. *)

val prepare_max :
  ?encrypt:(Bigint.t -> Paillier.ciphertext) ->
  pk:Paillier.public_key ->
  rng:Ppst_rng.Secure_rng.t ->
  session:Params.session ->
  Paillier.ciphertext array ->
  prepared
(** Mirror of {!prepare_min} for the maximum ([k + 1] candidates for the
    DFD case of two inputs).

    [?encrypt] overrides how offsets are encrypted (default
    [Paillier.encrypt pk rng]); the client passes its pooled offline
    encryptor here. *)

val unmask_min : pk:Paillier.public_key -> prepared -> Paillier.ciphertext -> Paillier.ciphertext
(** [unmask_min ~pk prepared reply] = [Enc(decrypt reply - r_min)]. *)

val unmask_max : pk:Paillier.public_key -> prepared -> Paillier.ciphertext -> Paillier.ciphertext

val draw_offsets :
  rng:Ppst_rng.Secure_rng.t -> session:Params.session -> count:int -> Bigint.t array
(** [count] distinct offsets from [(2^γ, 2^(γ+1)]], sorted ascending.
    Exposed for the leakage simulations and tests. *)

(** {1 Plan / apply split (parallel execution support)}

    {!prepare_min}/{!prepare_max} = {!plan} followed by {!apply_plan}.
    [plan] performs {e every} rng draw (offsets, decoy source indices,
    the shuffle permutation); [apply_plan] is pure given its [encrypt]
    function, calling it in a fixed order (the pivot offset once per
    input, in input order, then each decoy offset).  The client plans
    all instances of a batch sequentially, acquires encryption
    randomness sequentially, and applies the plans on a Domain pool —
    seeded transcripts are therefore identical at any pool size. *)

type plan = {
  pivot : Bigint.t;  (** [r_min] (or [r_max]) *)
  decoy_offsets : Bigint.t array;  (** the [k - 1] non-pivot offsets *)
  decoy_sources : int array;  (** input index each decoy masks *)
  perm : int array;  (** shuffled identity over all candidates *)
}

val plan :
  rng:Ppst_rng.Secure_rng.t ->
  session:Params.session ->
  extreme:[ `Min | `Max ] ->
  n_inputs:int ->
  plan
(** @raise Invalid_argument when [n_inputs] is 0. *)

val plan_encryptions : plan -> n_inputs:int -> int
(** Number of [encrypt] calls {!apply_plan} will make
    ([n_inputs + k - 1]). *)

val apply_plan :
  encrypt:(Bigint.t -> Paillier.ciphertext) ->
  pk:Paillier.public_key ->
  plan ->
  Paillier.ciphertext array ->
  prepared

val apply_plan_plain :
  pk:Paillier.public_key -> plan -> Paillier.ciphertext array -> prepared
(** {!apply_plan} with every offset added as a plaintext constant
    ([Paillier.add_plain]) instead of freshly encrypted — no rng, no
    noise.  Reserved for the packed path, where the caller re-randomizes
    each {e packed} ciphertext with one pooled [r^n] factor; never send
    these candidates unpacked. *)
