exception Band_too_narrow

module Telemetry = Ppst_telemetry.Telemetry

(* Mirrors Distance.dtw_sq_banded: out-of-band cells do not exist, and a
   cell combines only its in-band predecessors.  With zero or one live
   predecessor no interaction is needed; with two or three, a phase-2
   round runs on exactly those inputs. *)
let run_matrix ~band client =
  Client.require_plan client `Dtw;
  if band < 0 then invalid_arg "Secure_dtw_banded.run: negative band";
  let m = Client.client_length client in
  let n = Client.server_length client in
  if abs (m - n) > band then raise Band_too_narrow;
  Telemetry.span ~name:"dtw.banded"
    ~attrs:
      [
        ("m", Telemetry.Int m);
        ("n", Telemetry.Int n);
        ("band", Telemetry.Int band);
      ]
  @@ fun () ->
  let in_band i j = abs (i - j) <= band in
  (* offline randomness (upper bound): m row norms + one minimum round per
     in-band inner cell; cells per row <= 2*band + 1 *)
  let in_band_cells = m * ((2 * band) + 1) in
  let per_min = Client.round_randomness client [| 3 |] in
  Client.precompute_randomness client (m + (in_band_cells * per_min));
  (* phase 1: only in-band cost cells are ever read, but the cost-matrix
     evaluation is already the cheap part; computing the full matrix keeps
     the phase-1 message identical to unbanded DTW (same leakage profile).
     Skip per-cell work lazily instead. *)
  let data = Client.fetch_phase1 client in
  let cost = Client.cost_matrix_of client data in
  let matrix = Array.make_matrix m n None in
  matrix.(0).(0) <- Some cost.(0).(0);
  for i = 1 to m - 1 do
    if in_band i 0 then
      match matrix.(i - 1).(0) with
      | Some prev -> matrix.(i).(0) <- Some (Client.add client cost.(i).(0) prev)
      | None -> ()
  done;
  for j = 1 to n - 1 do
    if in_band 0 j then
      match matrix.(0).(j - 1) with
      | Some prev -> matrix.(0).(j) <- Some (Client.add client cost.(0).(j) prev)
      | None -> ()
  done;
  for i = 1 to m - 1 do
    for j = 1 to n - 1 do
      if in_band i j then begin
        let predecessors =
          List.filter_map Fun.id
            [ matrix.(i - 1).(j - 1); matrix.(i - 1).(j); matrix.(i).(j - 1) ]
        in
        match predecessors with
        | [] -> ()
        | [ only ] -> matrix.(i).(j) <- Some (Client.add client cost.(i).(j) only)
        | several ->
          let minimum = Client.secure_min client (Array.of_list several) in
          matrix.(i).(j) <- Some (Client.add client cost.(i).(j) minimum)
      end
    done
  done;
  match matrix.(m - 1).(n - 1) with
  | Some final ->
    let distance = Client.reveal client final in
    (matrix, distance)
  | None -> raise Band_too_narrow

let run ~band client = snd (run_matrix ~band client)

(* Banded Discrete Fréchet: same band geometry, with the DFD cell rule —
   a phase-2 minimum over the live predecessors followed by a phase-3
   maximum against the local cost (borders are pure maximum chains). *)
let run_dfd_matrix ~band client =
  if band < 0 then invalid_arg "Secure_dtw_banded.run_dfd: negative band";
  Client.require_plan client `Dfd;
  let m = Client.client_length client in
  let n = Client.server_length client in
  if abs (m - n) > band then raise Band_too_narrow;
  Telemetry.span ~name:"dfd.banded"
    ~attrs:
      [
        ("m", Telemetry.Int m);
        ("n", Telemetry.Int n);
        ("band", Telemetry.Int band);
      ]
  @@ fun () ->
  let in_band i j = abs (i - j) <= band in
  let in_band_cells = m * ((2 * band) + 1) in
  let per_min = Client.round_randomness client [| 3 |] in
  let per_max = Client.round_randomness client [| 2 |] in
  Client.precompute_randomness client (m + (in_band_cells * (per_min + per_max)));
  let data = Client.fetch_phase1 client in
  let cost = Client.cost_matrix_of client data in
  let matrix = Array.make_matrix m n None in
  matrix.(0).(0) <- Some cost.(0).(0);
  for i = 1 to m - 1 do
    if in_band i 0 then
      match matrix.(i - 1).(0) with
      | Some prev ->
        matrix.(i).(0) <- Some (Client.secure_max client [| cost.(i).(0); prev |])
      | None -> ()
  done;
  for j = 1 to n - 1 do
    if in_band 0 j then
      match matrix.(0).(j - 1) with
      | Some prev ->
        matrix.(0).(j) <- Some (Client.secure_max client [| cost.(0).(j); prev |])
      | None -> ()
  done;
  for i = 1 to m - 1 do
    for j = 1 to n - 1 do
      if in_band i j then begin
        let predecessors =
          List.filter_map Fun.id
            [ matrix.(i - 1).(j - 1); matrix.(i - 1).(j); matrix.(i).(j - 1) ]
        in
        match predecessors with
        | [] -> ()
        | [ only ] ->
          matrix.(i).(j) <- Some (Client.secure_max client [| cost.(i).(j); only |])
        | several ->
          let minimum = Client.secure_min client (Array.of_list several) in
          matrix.(i).(j) <-
            Some (Client.secure_max client [| cost.(i).(j); minimum |])
      end
    done
  done;
  match matrix.(m - 1).(n - 1) with
  | Some final ->
    let distance = Client.reveal client final in
    (matrix, distance)
  | None -> raise Band_too_narrow

let run_dfd ~band client = snd (run_dfd_matrix ~band client)
