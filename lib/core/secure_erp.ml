(* Mirrors Distance.erp_sq exactly: an (m+1) x (n+1) matrix whose borders
   accumulate gap penalties and whose inner cells take a three-way secure
   minimum over candidate *sums*.  Unlike DTW, the additions happen before
   the minimum (the three predecessors carry different local costs), so
   each cell does 3 homomorphic additions and then one phase-2 round. *)
let run_matrix ~gap client =
  Client.require_plan client `Erp;
  let m = Client.client_length client in
  let n = Client.server_length client in
  (* offline randomness: 1 border-zero encryption, m row-norm encryptions,
     one minimum round per inner cell *)
  let per_min = Client.round_randomness client [| 3 |] in
  Client.precompute_randomness client (1 + m + (m * n * per_min));
  let data = Client.fetch_phase1 client in
  let cost = Client.cost_matrix_of client data in
  let y_gap = Client.gap_costs_of client data ~gap in
  (* deletion penalties of the client's own elements: plaintext constants *)
  let x_gap =
    Array.init m (fun i ->
        Ppst_timeseries.Distance.sq_euclidean (Client.client_element client i) gap)
  in
  let matrix =
    Array.make_matrix (m + 1) (n + 1) (Client.encrypt_constant client 0)
  in
  for i = 1 to m do
    matrix.(i).(0) <- Client.add_plain client matrix.(i - 1).(0) x_gap.(i - 1)
  done;
  for j = 1 to n do
    matrix.(0).(j) <- Client.add client matrix.(0).(j - 1) y_gap.(j - 1)
  done;
  for i = 1 to m do
    for j = 1 to n do
      let match_candidate =
        Client.add client matrix.(i - 1).(j - 1) cost.(i - 1).(j - 1)
      in
      let delete_x = Client.add_plain client matrix.(i - 1).(j) x_gap.(i - 1) in
      let delete_y = Client.add client matrix.(i).(j - 1) y_gap.(j - 1) in
      matrix.(i).(j) <-
        Client.secure_min client [| match_candidate; delete_x; delete_y |]
    done
  done;
  let distance = Client.reveal client matrix.(m).(n) in
  (matrix, distance)

let run ~gap client = snd (run_matrix ~gap client)
