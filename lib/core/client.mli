(** The client party: owns time series [X], evaluates the encrypted
    dynamic-programming matrix, and drives the protocol rounds.

    The client never holds the secret key; every matrix entry it stores
    is a Paillier ciphertext (paper Figure 2).  It learns the final
    distance only through the joint {!reveal} step. *)

open Import

type t

exception Incompatible of string
(** Raised at {!connect} when the two series cannot be compared
    (dimension mismatch) or a coordinate violates the advertised bound. *)

type distance_kind = [ `Dtw | `Dfd | `Erp | `Euclidean ]

val connect :
  ?params:Params.t ->
  ?offline:bool ->
  ?packing:bool ->
  ?query:bool ->
  ?workers:Parallel.t ->
  rng:Secure_rng.t ->
  series:Series.t ->
  max_value:int ->
  distance:distance_kind ->
  Channel.t ->
  t
(** Perform the [Hello] handshake, rebuild the server's public key,
    validate dimensions and plan the session's masking parameters
    ({!Params.plan} with the larger of the two advertised coordinate
    bounds).

    [offline] (default true) enables the offline/online encryption split:
    the client precomputes its Paillier randomness ([r^n] factors) before
    the interactive rounds ({!precompute_randomness}), so its online work
    per masked round drops to modular multiplications — the natural mode
    for the paper's weak-client setting.  Offline time is accounted
    separately in {!Cost.client_offline_seconds}.

    [packing] (default false) offers the plaintext-packing capability
    ({!Message.flag_packing}): masked candidates ride ciphertexts many
    slots at a time, collapsing the per-candidate encryption and
    decryption work.  Packed runs produce the same distances as unpacked
    ones but not the same transcript bytes; servers that do not grant
    the flag (or keys too small to fit one slot) silently fall back to
    the unpacked rounds.  Combined with [offline], the pool refill runs
    on a background Domain using the fast subgroup noise generator.

    [workers] (default sequential) fans the client's embarrassingly
    parallel work — pool refills, cost-matrix rows, masked-candidate
    preparation — out over a Domain pool.  All randomness (rng draws and
    pool pops) is consumed sequentially before each fan-out, so a seeded
    session produces bit-identical transcripts at any pool size.

    [query] (default false) offers the catalog capability
    ({!Message.flag_catalog}): catalog enumeration, pruning-sketch and
    verdict rounds for 1-vs-N search ({!Query}).  Off by default so
    pairwise sessions keep their exact historical transcripts.
    @raise Incompatible on dimension mismatch
    @raise Params.Insecure when no safe [γ] exists for the negotiated
    key and series sizes. *)

val precompute_randomness : t -> int -> unit
(** Refill the randomness pool with [count] factors (no-op when [offline]
    is false; the protocol then pays fresh exponentiations online).  The
    DP drivers call this with the exact number of encryptions the run
    will need. *)

val pool_remaining : t -> int

val packing : t -> bool
(** Whether the packed profile is active for this session: offered at
    {!connect}, granted by the server, and the key fits at least one
    slot. *)

val round_randomness : t -> int array -> int
(** Pool draws one protocol round will consume, given the input count of
    each masked instance in the round — [Σ (n_i + k - 1)] offset
    encryptions in the default profile, the resulting packed-ciphertext
    count in the packed one.  The DP drivers sum this over their rounds
    to provision {!precompute_randomness} exactly. *)

val session : t -> Params.session
val public_key : t -> Paillier.public_key
val cost : t -> Cost.t

val stats : t -> Stats.t
(** Wire accounting of the underlying channel (live, cumulative) — the
    "actual" side of the {!Ledger} predicted-vs-actual check. *)

val channel : t -> Channel.t
(** The underlying request/reply channel.  Exposed so drivers above the
    client (e.g. the catalog query engine) can install per-operation
    wall budgets with [Channel.set_budget]; everything else should go
    through the typed operations on [t]. *)

val params : t -> Params.t


val server_length : t -> int
(** Length of the server's {e active} record (changes on
    {!select_record}). *)

val client_length : t -> int

val max_value : t -> int
(** The negotiated coordinate bound [V] (the larger of the two parties'
    advertised bounds); every coordinate of either series lies in
    [\[0, V\]].  The pruning round's public shift is [w_s * V]. *)

val distance : t -> distance_kind
(** The distance kind the session's masking parameters were planned for.
    Running a distance with a larger value bound than planned (e.g. DTW
    on a [`Dfd] session) is unsafe; {!Search} enforces the match. *)

val require_plan : t -> distance_kind -> unit
(** @raise Invalid_argument when the session was planned for a different
    distance kind.  Every secure-distance driver calls this first. *)

val client_element : t -> int -> int array
(** The client's own element [x_i] (it owns this data; drivers use it for
    client-local plaintext costs such as ERP's deletion penalties). *)

(** {1 Similarity search over server databases}

    When the server holds several records (see {!Server.create_db}), the
    client can enumerate them and switch the active one; each switch
    re-plans the masking parameters for the new matrix size.  {!Search}
    builds nearest-neighbour queries on top of this. *)

val catalog : t -> int array
(** Lengths of every server record (fetched once, then cached). *)

val select_record : t -> int -> unit
(** Make record [i] the active series for subsequent protocol runs.
    @raise Invalid_argument when [i] is outside the catalog. *)

(** {1 Catalog queries (1-vs-N extension)}

    The privacy-preserving pruning primitives {!Query} is built from.
    All of them require the catalog capability (offer [~query:true] at
    {!connect} to a granting server; check {!catalog_capable}) and raise
    {!Channel.Protocol_error} without it. *)

val catalog_capable : t -> bool
(** Whether the server granted {!Message.flag_catalog}. *)

val catalog_list : t -> string array * int array
(** Enumerate the server's records: ids and lengths, positionally
    aligned; the position is the index used by {!query_submit} and
    {!select_record}. *)

val query_submit :
  t ->
  segments:int ->
  band:int option ->
  indices:int array ->
  (Paillier.ciphertext array * Paillier.ciphertext array) array
(** Open a pruning round: for each candidate index, the server's
    encrypted per-segment coupling-window extremes [(lo, hi)], each
    [segments * dimension] ciphertexts in segment-major dimension-minor
    order ({!Lower_bound.segment_bounds}).  Timed as phase 1. *)

val verdict_round :
  t -> bound:Bigint.t -> Paillier.ciphertext array -> bool array option
(** Blinded sign test.  Input ciphertexts hold signed threshold
    differences (centered residues, [|p| < bound], negative = the
    candidate survives); each is multiplicatively blinded as
    [Enc(ρ·p + μ)] with fresh [ρ, μ] before the server decrypts and
    answers only the signs.  Returns [None] — without any network
    traffic — when the modulus leaves fewer than 16 bits for [ρ];
    callers then keep every candidate.  Timed as phase 2. *)

val plan_aux_session : t -> value_bound:Bigint.t -> Params.session
(** Masking parameters for an auxiliary round whose plaintexts are
    bounded by [value_bound] instead of a DP-matrix bound
    ({!Params.plan_bound} against the session key). *)

val with_session : t -> Params.session -> (unit -> 'a) -> 'a
(** Run [f] with the active masking session swapped — the secure
    min/max rounds and the packing geometry all follow.  The original
    session is restored on any exit. *)

(** {1 Phase 1} *)

type phase1_data = {
  server_sumsq : Paillier.ciphertext array;  (** [Enc(Σ_l y_jl²)] *)
  server_coords : Paillier.ciphertext array array;  (** [Enc(y_jl)] *)
}

val fetch_phase1 : t -> phase1_data
(** One-way transfer of the encrypted active record (Section 3.2).
    Timed as phase 1. *)

val cost_matrix_of : t -> phase1_data -> Paillier.ciphertext array array
(** Evaluate [Enc(δ²(x_i, y_j))] for every pair (Eq. 4) — [m × n]
    ciphertexts.  Timed as phase 1. *)

val fetch_cost_matrix : t -> Paillier.ciphertext array array
(** [fetch_phase1] followed by [cost_matrix_of]. *)

val gap_costs_of : t -> phase1_data -> gap:int array -> Paillier.ciphertext array
(** [Enc(δ²(y_j, gap))] for every server element, for a public gap
    element — derived homomorphically from the phase-1 data with no extra
    communication.  Secure ERP uses this for its deletion penalties.
    @raise Invalid_argument on dimension mismatch or a gap coordinate
    outside the negotiated bound. *)

(** {1 Phases 2 and 3} *)

val secure_min : t -> Paillier.ciphertext array -> Paillier.ciphertext
(** Phase 2 round: masked-candidate minimum (Section 5.1).  Exactly one
    round trip of [k + length inputs] ciphertexts; the reply is unmasked
    homomorphically.  Timed as phase 2. *)

val secure_max : t -> Paillier.ciphertext array -> Paillier.ciphertext
(** Phase 3 round: masked-candidate maximum (Section 6).  Timed as
    phase 3. *)

val secure_min_batch :
  t -> Paillier.ciphertext array array -> Paillier.ciphertext array
(** Wavefront extension: several independent secure-minimum instances in
    {e one} round trip.  Each instance is masked exactly as in
    {!secure_min} — same candidates, same offsets, same re-encryption —
    only the framing changes, so the leakage profile is identical while
    the round count drops from one per cell to one per DP anti-diagonal.
    Results are in instance order. *)

val secure_max_batch :
  t -> Paillier.ciphertext array array -> Paillier.ciphertext array

(** {1 Local ciphertext arithmetic} *)

val add : t -> Paillier.ciphertext -> Paillier.ciphertext -> Paillier.ciphertext
(** Homomorphic addition (DTW cell assembly), counted in the client's
    operation tally. *)

val add_plain : t -> Paillier.ciphertext -> int -> Paillier.ciphertext
(** Homomorphic addition of a client-known constant (ERP uses this for
    the [δ²(x_i, gap)] penalties). *)

val add_plain_big : t -> Paillier.ciphertext -> Bigint.t -> Paillier.ciphertext
(** {!add_plain} for bigint constants (negative values are reduced
    mod n — the catalog pruning round subtracts its public shift this
    way). *)

val scalar_mul : t -> Paillier.ciphertext -> Bigint.t -> Paillier.ciphertext
(** Homomorphic scalar multiplication, counted in the client's tally. *)

val encrypt_constant : t -> int -> Paillier.ciphertext
(** Encrypt a client-known value (pooled).  ERP border cells use this. *)

(** {1 Completion} *)

val reveal : t -> Paillier.ciphertext -> Bigint.t
(** Send the final ciphertext for decryption; both parties learn the
    plaintext (the only value the protocol discloses). *)

val finish : t -> unit
(** Close the channel ([Bye]). *)
