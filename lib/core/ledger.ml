open Import

(* Cost-attribution ledger: predicted protocol cost (the paper's closed
   forms, Section 5.2) against actual wire accounting (Stats value
   counts).  The protocols have exactly-predictable value counts, so any
   drift is simultaneously a correctness signal (a driver sending frames
   the model does not know about) and a leakage signal (extra values on
   the wire that the security argument never accounted for).

   The module is a leaf: hooks compute [predicted] from the closed forms
   and [actual] from channel stats at the call site and hand both in as
   plain integers, so the ledger depends on nothing above telemetry. *)

type workload = Pairwise | Query

type entry = {
  workload : workload;
  predicted_values : int;
  actual_values : int;
}

let drift e = e.actual_values - e.predicted_values

let m_checks = Metrics.counter "ledger.checks"
let m_pairwise = Metrics.counter "ledger.pairwise.checks"
let m_query = Metrics.counter "ledger.query.checks"
let m_predicted = Metrics.counter "ledger.predicted.values"
let m_actual = Metrics.counter "ledger.actual.values"
let m_drift_events = Metrics.counter "ledger.drift.events"
let m_drift_values = Metrics.counter "ledger.drift.values"

let mu = Mutex.create ()
let retain = 64
let recent_entries : entry list ref = ref []

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let record ~workload ~predicted ~actual =
  let e = { workload; predicted_values = predicted; actual_values = actual } in
  Metrics.incr m_checks;
  Metrics.incr (match workload with Pairwise -> m_pairwise | Query -> m_query);
  Metrics.incr ~by:predicted m_predicted;
  Metrics.incr ~by:actual m_actual;
  if predicted <> actual then begin
    Metrics.incr m_drift_events;
    Metrics.incr ~by:(abs (actual - predicted)) m_drift_values
  end;
  Telemetry.event ~name:"ledger.check"
    ~attrs:
      [
        ("predicted_values", Telemetry.Int predicted);
        ("actual_values", Telemetry.Int actual);
        ("drift", Telemetry.Int (actual - predicted));
      ]
    ();
  Mutex.lock mu;
  recent_entries := e :: take (retain - 1) !recent_entries;
  Mutex.unlock mu;
  e

let recent () =
  Mutex.lock mu;
  let l = !recent_entries in
  Mutex.unlock mu;
  l

let drift_events () = Metrics.counter_value m_drift_events
