open Import

exception Incompatible of string

type distance_kind = [ `Dtw | `Dfd | `Erp | `Euclidean ]

type t = {
  series : Series.t;
  channel : Channel.t;
  rng : Secure_rng.t;
  noise_rng : Secure_rng.t;
      (* dedicated stream for r^n noise draws, split off [rng] at
         connect.  Masking draws and noise draws then advance two
         independent streams, so precomputing the noise offline (pool
         refill) consumes randomness in exactly the order online misses
         would — pooled and unpooled seeded runs are bit-identical. *)
  pk : Paillier.public_key;
  params : Params.t;
  distance : distance_kind;
  max_value : int;  (* negotiated coordinate bound (max of both parties) *)
  packing : bool;  (* server granted Message.flag_packing *)
  catalog_cap : bool;  (* server granted Message.flag_catalog *)
  mutable session : Params.session;
  mutable server_length : int;
  mutable catalog : int array option;
  cost : Cost.t;
  pool : Paillier.randomness_pool;
  offline : bool;
  mutable refill_join : (unit -> unit) option;
      (* outstanding background pool producer, joined at [finish] *)
  workers : Parallel.t;
}

let session t = t.session
let public_key t = t.pk
let cost t = t.cost
let stats t = Channel.stats t.channel
let channel t = t.channel
let params t = t.params
let server_length t = t.server_length
let client_length t = Series.length t.series
let client_element t i = Series.get t.series i
let max_value t = t.max_value
let distance t = t.distance

let show_kind = function
  | `Dtw -> "`Dtw"
  | `Dfd -> "`Dfd"
  | `Erp -> "`Erp"
  | `Euclidean -> "`Euclidean"

(* Drivers call this before touching the matrix: running a distance whose
   value bound exceeds the planned one would break the masking analysis. *)
let require_plan t expected =
  if t.distance <> expected then
    invalid_arg
      (Printf.sprintf
         "this driver needs a session planned with ~distance:%s (got %s)"
         (show_kind expected) (show_kind t.distance))

(* Per-phase wall-clock mirrored into the process metrics registry, so a
   live Stats_req snapshot shows where sessions spend their time. *)
let m_phase_seconds =
  [|
    Metrics.gauge "protocol.phase1.seconds";
    Metrics.gauge "protocol.phase2.seconds";
    Metrics.gauge "protocol.phase3.seconds";
  |]

let phase_index = function Cost.Phase1 -> 0 | Cost.Phase2 -> 1 | Cost.Phase3 -> 2

(* Attribute elapsed wall time to [phase], splitting out the time the
   local channel spent inside the server handler so client and server
   work are measured separately (Figures 6 and 10). *)
let timed t phase f =
  let w0 = Unix.gettimeofday () in
  let s0 = Channel.server_seconds t.channel in
  let result = f () in
  let w1 = Unix.gettimeofday () in
  let s1 = Channel.server_seconds t.channel in
  Cost.add_server_time t.cost phase (s1 -. s0);
  Cost.add_client_time t.cost phase (w1 -. w0 -. (s1 -. s0));
  Metrics.gauge_add m_phase_seconds.(phase_index phase) (w1 -. w0);
  result

(* Pooled online encryption: consumes offline-precomputed r^n factors
   when available (see Paillier.randomness_pool).  Pool misses — online
   exponentiations that the offline provisioning should have covered —
   are mirrored into the cost record after every consumption site. *)
let sync_pool_misses t =
  Cost.set_pool_misses t.cost (Paillier.pool_misses t.pool)

let encrypt_online t m =
  let client_ops = Cost.client_ops t.cost in
  client_ops.Cost.encryptions <- client_ops.Cost.encryptions + 1;
  let c = Paillier.encrypt_pooled t.pk t.pool t.noise_rng m in
  sync_pool_misses t;
  c

let join_refill t =
  match t.refill_join with
  | None -> ()
  | Some join ->
    t.refill_join <- None;
    (* only the time the client actually blocks on the producer counts
       as offline cost; the overlapped production itself is free wall *)
    let t0 = Unix.gettimeofday () in
    join ();
    Cost.add_client_offline t.cost (Unix.gettimeofday () -. t0)

let precompute_randomness t count =
  if t.offline && count > 0 then
    Telemetry.span ~name:"client.offline.refill"
      ~attrs:
        [
          ("count", Telemetry.Int count);
          ("phase", Telemetry.Phase Telemetry.Offline);
        ]
      (fun () ->
        join_refill t;
        if t.packing then
          (* packed profile: fast subgroup noise, produced on a
             background Domain; online rounds block in rn_acquire while
             entries are owed instead of recording misses *)
          t.refill_join <-
            Some (Paillier.pool_refill_async ~fast:true t.pk t.pool t.noise_rng count)
        else begin
          let t0 = Unix.gettimeofday () in
          Paillier.pool_refill ~workers:t.workers t.pk t.pool t.noise_rng count;
          Cost.add_client_offline t.cost (Unix.gettimeofday () -. t0)
        end)

let pool_remaining t = Paillier.pool_size t.pool

let check_own_bounds series max_value =
  let d = Series.dimension series in
  for i = 0 to Series.length series - 1 do
    let e = Series.get series i in
    for l = 0 to d - 1 do
      if e.(l) < 0 || e.(l) > max_value then
        raise
          (Incompatible
             (Printf.sprintf "client coordinate %d of element %d is %d, outside [0, %d]"
                l i e.(l) max_value))
    done
  done

let plan_session ~params ~series ~server_length ~max_value ~modulus ~distance =
  Params.plan params ~max_value ~dimension:(Series.dimension series)
    ~client_length:(Series.length series) ~server_length ~modulus ~distance

let connect ?(params = Params.default) ?(offline = true) ?(packing = false)
    ?(query = false) ?(workers = Parallel.sequential) ~rng ~series ~max_value
    ~distance channel =
  check_own_bounds series max_value;
  (* Offer the channel's transport capabilities (CRC, resume) in Hello,
     and declare the client's matrix contribution (series length and
     dimension) so an admission-controlled server can price the session
     before any Paillier work.  A pre-capability server sees trailing
     bytes it cannot parse and answers with an in-band error — fall back
     to a bare Hello once, so new clients interop with old servers at
     the cost of one round. *)
  let offered =
    Channel.offered_flags channel
    lor (if packing then Message.flag_packing else 0)
    lor if query then Message.flag_catalog else 0
  in
  let spec =
    Some
      {
        Message.series_len = Series.length series;
        dimension = Series.dimension series;
      }
  in
  let welcome =
    let hello flags spec = Channel.request channel (Message.Hello { flags; spec }) in
    try hello offered spec
    with Channel.Protocol_error _ when offered <> 0 || spec <> None ->
      hello 0 None
  in
  match welcome with
  | Message.Welcome
      { n; key_bits; series_length; dimension; max_value = server_max; flags; _ } ->
    if dimension <> Series.dimension series then
      raise
        (Incompatible
           (Printf.sprintf "dimension mismatch: client %d, server %d"
              (Series.dimension series) dimension));
    let pk = Paillier.public_of_modulus n ~bits:key_bits in
    let bound = Stdlib.max max_value server_max in
    let session =
      plan_session ~params ~series ~server_length:series_length ~max_value:bound
        ~modulus:pk.Paillier.n ~distance
    in
    (* the noise stream forks off the session rng here, after the
       handshake: every r^n draw — offline refill or online miss — comes
       from [noise_rng], every masking draw from [rng] *)
    let noise_rng = Secure_rng.of_seed_bytes (Secure_rng.bytes rng 32) in
    {
      series;
      channel;
      rng;
      noise_rng;
      pk;
      params;
      distance;
      max_value = bound;
      packing = packing && flags land Message.flag_packing <> 0;
      catalog_cap = query && flags land Message.flag_catalog <> 0;
      session;
      server_length = series_length;
      catalog = None;
      cost = Cost.create ();
      pool = Paillier.pool_create pk;
      offline;
      refill_join = None;
      workers;
    }
  | _ -> raise (Channel.Protocol_error "expected Welcome after Hello")

(* --- similarity-search extension: record catalogs ----------------------- *)

let catalog t =
  match t.catalog with
  | Some lengths -> Array.copy lengths
  | None -> begin
    match Channel.request t.channel Message.Catalog_request with
    | Message.Catalog_reply lengths ->
      t.catalog <- Some lengths;
      Array.copy lengths
    | _ -> raise (Channel.Protocol_error "expected Catalog_reply")
  end

let select_record t index =
  let lengths = catalog t in
  if index < 0 || index >= Array.length lengths then
    invalid_arg
      (Printf.sprintf "Client.select_record: %d out of range [0, %d)" index
         (Array.length lengths));
  match Channel.request t.channel (Message.Select_request index) with
  | Message.Select_ack i when i = index ->
    t.server_length <- lengths.(index);
    (* the masking parameters depend on the matrix size: re-plan *)
    t.session <-
      plan_session ~params:t.params ~series:t.series ~server_length:lengths.(index)
        ~max_value:t.max_value ~modulus:t.pk.Paillier.n ~distance:t.distance
  | Message.Select_ack _ ->
    raise (Channel.Protocol_error "select acknowledged the wrong record")
  | _ -> raise (Channel.Protocol_error "expected Select_ack")

(* --- catalog extension: enumeration, sketches, verdicts ----------------- *)

let catalog_capable t = t.catalog_cap

let require_catalog t =
  if not t.catalog_cap then
    raise (Channel.Protocol_error "server did not grant the catalog capability")

let catalog_list t =
  require_catalog t;
  match Channel.request t.channel Message.Catalog_list_request with
  | Message.Catalog_list_reply { ids; lengths } ->
    if Array.length ids <> Array.length lengths then
      raise (Channel.Protocol_error "catalog-list ids/lengths mismatch");
    t.catalog <- Some lengths;
    (Array.copy ids, Array.copy lengths)
  | _ -> raise (Channel.Protocol_error "expected Catalog_list_reply")

let query_submit t ~segments ~band ~indices =
  require_catalog t;
  if segments <= 0 then invalid_arg "Client.query_submit: segments must be positive";
  if Array.length indices = 0 then
    invalid_arg "Client.query_submit: empty candidate set";
  let d = Series.dimension t.series in
  let per = segments * d in
  timed t Cost.Phase1 (fun () ->
      match
        Channel.request t.channel (Message.Query_submit { segments; band; indices })
      with
      | Message.Query_sketch sketches ->
        if Array.length sketches <> Array.length indices then
          raise (Channel.Protocol_error "sketch count differs from candidate count");
        Array.map
          (fun { Message.lo; hi } ->
            if Array.length lo <> per || Array.length hi <> per then
              raise (Channel.Protocol_error "sketch slot count mismatch");
            let wrap = Paillier.ciphertext_of_bigint t.pk in
            (Array.map wrap lo, Array.map wrap hi))
          sketches
      | Message.Error_reply m -> raise (Channel.Protocol_error m)
      | _ -> raise (Channel.Protocol_error "expected Query_sketch"))

(* Verdict round.  Each input ciphertext holds a signed threshold
   difference p in (-bound, bound) (centered residue mod n): negative
   means the candidate's lower bound stayed below the threshold.  The
   client multiplicatively blinds each difference — Enc(ρ·p + μ) with
   fresh ρ ∈ [2^(ρ_bits-1), 2^ρ_bits) and μ ∈ [0, ρ) — so the server's
   decryption reveals the sign and nothing else: ρ·p + μ keeps p's sign
   (μ < ρ) and stays under n/2 in magnitude because ρ_bits is sized to
   leave two spare bits.  Returns [None] without touching the network
   when the modulus is too small to blind meaningfully (< 16 bits of ρ);
   callers then keep every candidate. *)
let verdict_round t ~bound diffs =
  require_catalog t;
  let rho_bits = Bigint.num_bits t.pk.Paillier.n - 2 - Bigint.num_bits bound in
  if rho_bits < 16 then None
  else
    timed t Cost.Phase2 (fun () ->
        let client_ops = Cost.client_ops t.cost in
        let half = Bigint.shift_left Bigint.one (rho_bits - 1) in
        let blinded =
          Array.map
            (fun c ->
              let rho = Bigint.add half (Secure_rng.below t.rng half) in
              let mu = Secure_rng.below t.rng rho in
              client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + 2;
              let scaled = Paillier.scalar_mul t.pk c rho in
              Paillier.ciphertext_to_bigint (Paillier.add_plain t.pk scaled mu))
            diffs
        in
        match Channel.request t.channel (Message.Verdict_request blinded) with
        | Message.Verdict_reply survive ->
          if Array.length survive <> Array.length diffs then
            raise (Channel.Protocol_error "verdict count differs from candidate count");
          Some survive
        | Message.Error_reply m -> raise (Channel.Protocol_error m)
        | _ -> raise (Channel.Protocol_error "expected Verdict_reply"))

(* Auxiliary masking sessions: the pruning round masks lower-bound gap
   values, not DP-matrix entries, so it plans its own (β, γ) from an
   explicit bound and runs the standard extreme machinery under it.
   [t.session] is swapped for the duration — packing_spec and the
   secure_min/max paths all read it — and restored on any exit. *)
let plan_aux_session t ~value_bound =
  Params.plan_bound t.params ~value_bound ~modulus:t.pk.Paillier.n

let with_session t session f =
  let saved = t.session in
  t.session <- session;
  Fun.protect ~finally:(fun () -> t.session <- saved) f

(* --- plaintext packing (packed/fast profile) ----------------------------- *)

(* Slot geometry, derived from the masking analysis: every masked
   candidate is below [value_bound + offset_hi] (the wrap guard of
   Params.plan), so that bound's width is the slot width.  Recomputed on
   demand — a [select_record] re-plan changes it. *)
let packing_spec t =
  let s = t.session in
  let slot_bits =
    Bigint.num_bits (Bigint.add s.Params.value_bound s.Params.offset_hi)
  in
  (slot_bits, Paillier.pack_capacity t.pk ~slot_bits)

(* Packing is active when the server granted it AND the key leaves room
   for at least one slot (a 64-bit test key planned near its wrap guard
   has capacity 0 — fall back to the unpacked rounds silently). *)
let packing_active t = t.packing && snd (packing_spec t) >= 1

(* --- phase 1 -------------------------------------------------------------- *)

type phase1_data = {
  server_sumsq : Paillier.ciphertext array;
  server_coords : Paillier.ciphertext array array;
}

let fetch_phase1 t =
  Telemetry.span ~name:"client.phase1.fetch"
    ~attrs:[ ("phase", Telemetry.Phase Telemetry.Phase1) ]
  @@ fun () ->
  timed t Cost.Phase1 (fun () ->
      let elements =
        match Channel.request t.channel Message.Phase1_request with
        | Message.Phase1_reply e -> e
        | _ -> raise (Channel.Protocol_error "expected Phase1_reply")
      in
      if Array.length elements <> t.server_length then
        raise (Channel.Protocol_error "phase1 element count differs from Welcome");
      let d = Series.dimension t.series in
      let wrap v = Paillier.ciphertext_of_bigint t.pk v in
      let server_sumsq = Array.map (fun e -> wrap e.Message.sum_sq) elements in
      let server_coords =
        Array.map
          (fun e ->
            if Array.length e.Message.coords <> d then
              raise (Channel.Protocol_error "phase1 coordinate count mismatch");
            Array.map wrap e.Message.coords)
          elements
      in
      { server_sumsq; server_coords })

(* Enc(δ²(x, y_j)) = Enc(Σ x²) · Enc(Σ y_j²) · Π_l Enc(y_jl)^(-2 x_l)
   (Section 3.2, Eq. 4).  [enc_x_sumsq] is the client's encryption of its
   own squared norm; it may be reused across a row — it never leaves the
   client unmasked, and outgoing candidates are re-randomized in Masking.
   Pure (no counter updates): rows fan out over the worker pool, with
   the homomorphic tally taken in bulk by the caller. *)
let cost_cell pk data ~enc_x_sumsq ~x j =
  let acc = ref (Paillier.add pk enc_x_sumsq data.server_sumsq.(j)) in
  for l = 0 to Array.length x - 1 do
    let factor =
      Paillier.scalar_mul pk data.server_coords.(j).(l)
        (Bigint.of_int (-2 * x.(l)))
    in
    acc := Paillier.add pk !acc factor
  done;
  !acc

let cost_matrix_of t data =
  Telemetry.span ~name:"client.phase1.matrix"
    ~attrs:[ ("phase", Telemetry.Phase Telemetry.Phase1) ]
  @@ fun () ->
  timed t Cost.Phase1 (fun () ->
      let m = Series.length t.series in
      let d = Series.dimension t.series in
      (* Row norms are encrypted sequentially first (pool pops and any
         miss draws happen in row order, independent of the pool size);
         the scalar_mul-heavy cell evaluations then fan out per row. *)
      let rows =
        Array.init m (fun i ->
            let x = Series.get t.series i in
            let sum_sq = Array.fold_left (fun acc v -> acc + (v * v)) 0 x in
            (x, encrypt_online t (Bigint.of_int sum_sq)))
      in
      let client_ops = Cost.client_ops t.cost in
      client_ops.Cost.homomorphic <-
        client_ops.Cost.homomorphic + (m * t.server_length * (1 + (2 * d)));
      if packing_active t then begin
        (* packed profile: invert each server coordinate once (one
           modular inverse) so the per-cell factor is the small positive
           power [inv^(2 x_l)] instead of the full-width [n - 2 x_l]
           exponent that [scalar_mul c (-2 x_l)] pays.  Decrypts
           identically; ciphertext bytes differ, which the packed
           (distance-compared) profile permits. *)
        let inv_coords =
          Parallel.map_array t.workers
            (Array.map (Paillier.invert_ciphertext t.pk))
            data.server_coords
        in
        Parallel.map_array t.workers
          (fun (x, enc_x_sumsq) ->
            Array.init t.server_length (fun j ->
                let acc = ref (Paillier.add t.pk enc_x_sumsq data.server_sumsq.(j)) in
                for l = 0 to d - 1 do
                  let factor =
                    Paillier.scalar_mul t.pk inv_coords.(j).(l)
                      (Bigint.of_int (2 * x.(l)))
                  in
                  acc := Paillier.add t.pk !acc factor
                done;
                !acc))
          rows
      end
      else
        Parallel.map_array t.workers
          (fun (x, enc_x_sumsq) ->
            Array.init t.server_length (fun j -> cost_cell t.pk data ~enc_x_sumsq ~x j))
          rows)

let fetch_cost_matrix t =
  let data = fetch_phase1 t in
  cost_matrix_of t data

(* Enc(δ²(y_j, gap)) for a public gap element, derived from the phase-1
   ciphertexts with no extra communication:
   δ²(y_j, g) = Σ y² - 2 Σ g_l y_jl + Σ g².  Used by secure ERP. *)
let gap_costs_of t data ~gap =
  timed t Cost.Phase1 (fun () ->
      let d = Series.dimension t.series in
      if Array.length gap <> d then
        invalid_arg "Client.gap_costs_of: gap dimension mismatch";
      Array.iter
        (fun g ->
          if g < 0 || g > t.max_value then
            invalid_arg "Client.gap_costs_of: gap outside the negotiated bound")
        gap;
      let gap_sumsq = Array.fold_left (fun acc v -> acc + (v * v)) 0 gap in
      let client_ops = Cost.client_ops t.cost in
      Array.init t.server_length (fun j ->
          let acc =
            ref (Paillier.add_plain t.pk data.server_sumsq.(j) (Bigint.of_int gap_sumsq))
          in
          client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + 1;
          for l = 0 to d - 1 do
            if gap.(l) <> 0 then begin
              let factor =
                Paillier.scalar_mul t.pk data.server_coords.(j).(l)
                  (Bigint.of_int (-2 * gap.(l)))
              in
              acc := Paillier.add t.pk !acc factor;
              client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + 2
            end
          done;
          !acc))

(* --- phases 2 and 3 -------------------------------------------------------- *)

let round_extreme t phase ~prepare ~request ~unmask inputs =
  timed t phase (fun () ->
      let prepared =
        prepare ~encrypt:(encrypt_online t) ~pk:t.pk ~rng:t.rng ~session:t.session
          inputs
      in
      let client_ops = Cost.client_ops t.cost in
      (* One offset encryption per candidate (counted by encrypt_online),
         plus the homomorphic add folding it into the source ciphertext. *)
      let n_candidates = Array.length prepared.Masking.candidates in
      client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + n_candidates;
      let payload =
        Array.map Paillier.ciphertext_to_bigint prepared.Masking.candidates
      in
      match Channel.request t.channel (request payload) with
      | Message.Cipher_reply v ->
        client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + 1;
        unmask ~pk:t.pk prepared (Paillier.ciphertext_of_bigint t.pk v)
      | _ -> raise (Channel.Protocol_error "expected Cipher_reply"))

(* Wavefront extension: many independent extreme instances in a single
   round trip.  Each instance is masked exactly as in the per-cell round;
   only the message framing changes, so the security argument carries
   over unchanged.

   Parallel execution: all randomness is consumed sequentially up front —
   the masking plans (offsets, decoy sources, shuffles), then one
   rn_source per offset encryption, in a fixed instance-major order.
   What remains per instance (the owed exponentiations on pool misses,
   the g^m multiplications, the homomorphic adds) is pure and fans out
   over the worker pool, so seeded transcripts are bit-identical at any
   pool size. *)
let batch_extreme t phase ~extreme ~request ~unmask (instances : Paillier.ciphertext array array) =
  if Array.length instances = 0 then [||]
  else
    timed t phase (fun () ->
        let client_ops = Cost.client_ops t.cost in
        let planned =
          Array.map
            (fun inputs ->
              let n_inputs = Array.length inputs in
              let plan = Masking.plan ~rng:t.rng ~session:t.session ~extreme ~n_inputs in
              let encs = Masking.plan_encryptions plan ~n_inputs in
              client_ops.Cost.encryptions <- client_ops.Cost.encryptions + encs;
              client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + encs;
              let rns =
                Array.init encs (fun _ -> Paillier.rn_acquire t.pk t.pool t.noise_rng)
              in
              (inputs, plan, rns))
            instances
        in
        sync_pool_misses t;
        let prepared =
          Parallel.map_array t.workers
            (fun (inputs, plan, rns) ->
              let next = ref 0 in
              let encrypt m =
                let rn = Paillier.rn_realize t.pk rns.(!next) in
                incr next;
                Paillier.encrypt_with_rn t.pk ~rn m
              in
              Masking.apply_plan ~encrypt ~pk:t.pk plan inputs)
            planned
        in
        let payload =
          Array.map
            (fun p -> Array.map Paillier.ciphertext_to_bigint p.Masking.candidates)
            prepared
        in
        match Channel.request t.channel (request payload) with
        | Message.Batch_cipher_reply replies ->
          if Array.length replies <> Array.length instances then
            raise (Channel.Protocol_error "batch reply count mismatch");
          Array.mapi
            (fun i v ->
              client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + 1;
              unmask ~pk:t.pk prepared.(i) (Paillier.ciphertext_of_bigint t.pk v))
            replies
        | _ -> raise (Channel.Protocol_error "expected Batch_cipher_reply"))

(* Packed batch: same plans and plaintext relationships as
   [batch_extreme], but the candidates are assembled with plaintext adds
   (no per-candidate noise), concatenated across instances, packed
   [capacity] slots to a ciphertext, and each pack re-randomized with ONE
   pooled r^n factor — which makes the pack's noise uniform, covering
   every slot at once (SECURITY.md).  The server decrypts
   ceil(total/capacity) ciphertexts instead of one per candidate and
   replies as in the unpacked batch. *)
let batch_extreme_packed t phase ~extreme ~request ~unmask
    (instances : Paillier.ciphertext array array) =
  if Array.length instances = 0 then [||]
  else
    timed t phase (fun () ->
        let client_ops = Cost.client_ops t.cost in
        let slot_bits, capacity = packing_spec t in
        let planned =
          Array.map
            (fun inputs ->
              let n_inputs = Array.length inputs in
              let plan = Masking.plan ~rng:t.rng ~session:t.session ~extreme ~n_inputs in
              client_ops.Cost.homomorphic <-
                client_ops.Cost.homomorphic + Masking.plan_encryptions plan ~n_inputs;
              (inputs, plan))
            instances
        in
        let prepared =
          Parallel.map_array t.workers
            (fun (inputs, plan) -> Masking.apply_plan_plain ~pk:t.pk plan inputs)
            planned
        in
        let counts = Array.map (fun p -> Array.length p.Masking.candidates) prepared in
        let flat =
          Array.concat (Array.to_list (Array.map (fun p -> p.Masking.candidates) prepared))
        in
        let total = Array.length flat in
        let packs = (total + capacity - 1) / capacity in
        let chunks =
          Array.init packs (fun i ->
              let lo = i * capacity in
              Array.sub flat lo (min capacity (total - lo)))
        in
        (* Horner packing is pure and fans out; the pooled
           re-randomization draws stay sequential in pack order. *)
        let packed_cts =
          Parallel.map_array t.workers
            (Paillier.pack_ciphertexts t.pk ~slot_bits)
            chunks
        in
        client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + total;
        client_ops.Cost.encryptions <- client_ops.Cost.encryptions + packs;
        let payload =
          Array.map
            (fun c ->
              Paillier.ciphertext_to_bigint
                (Paillier.rerandomize_pooled t.pk t.pool t.noise_rng c))
            packed_cts
        in
        sync_pool_misses t;
        match Channel.request t.channel (request ~slot_bits ~counts ~packed:payload) with
        | Message.Batch_cipher_reply replies ->
          if Array.length replies <> Array.length instances then
            raise (Channel.Protocol_error "batch reply count mismatch");
          Array.mapi
            (fun i v ->
              client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + 1;
              unmask ~pk:t.pk prepared.(i) (Paillier.ciphertext_of_bigint t.pk v))
            replies
        | _ -> raise (Channel.Protocol_error "expected Batch_cipher_reply"))

let secure_min_batch t instances =
  if packing_active t then
    batch_extreme_packed t Cost.Phase2 ~extreme:`Min
      ~request:(fun ~slot_bits ~counts ~packed ->
        Message.Packed_min_request { slot_bits; counts; packed })
      ~unmask:Masking.unmask_min instances
  else
    batch_extreme t Cost.Phase2 ~extreme:`Min
      ~request:(fun p -> Message.Batch_min_request p)
      ~unmask:Masking.unmask_min instances

let secure_max_batch t instances =
  if packing_active t then
    batch_extreme_packed t Cost.Phase3 ~extreme:`Max
      ~request:(fun ~slot_bits ~counts ~packed ->
        Message.Packed_max_request { slot_bits; counts; packed })
      ~unmask:Masking.unmask_max instances
  else
    batch_extreme t Cost.Phase3 ~extreme:`Max
      ~request:(fun p -> Message.Batch_max_request p)
      ~unmask:Masking.unmask_max instances

(* The single-instance rounds delegate to the packed batch when packing
   is active, so every DP driver rides the packed path without
   structural changes. *)
let secure_min t inputs =
  if packing_active t then (secure_min_batch t [| inputs |]).(0)
  else
    round_extreme t Cost.Phase2
      ~prepare:(fun ~encrypt -> Masking.prepare_min ~encrypt)
      ~request:(fun p -> Message.Min_request p)
      ~unmask:Masking.unmask_min inputs

let secure_max t inputs =
  if packing_active t then (secure_max_batch t [| inputs |]).(0)
  else
    round_extreme t Cost.Phase3
      ~prepare:(fun ~encrypt -> Masking.prepare_max ~encrypt)
      ~request:(fun p -> Message.Max_request p)
      ~unmask:Masking.unmask_max inputs

(* Pool draws one protocol round consumes — the bridge between the
   drivers' provisioning formulas and the active profile.  [sizes] lists
   the input count of each masked instance in the round: the default
   profile encrypts one offset per candidate; the packed profile draws
   one factor per packed ciphertext. *)
let round_randomness t sizes =
  let k = t.session.Params.params.Params.k in
  let slots = Array.fold_left (fun acc n -> acc + n + k - 1) 0 sizes in
  if packing_active t then
    let _, capacity = packing_spec t in
    (slots + capacity - 1) / capacity
  else slots

let add t c1 c2 =
  let client_ops = Cost.client_ops t.cost in
  client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + 1;
  Paillier.add t.pk c1 c2

let add_plain_big t c v =
  let client_ops = Cost.client_ops t.cost in
  client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + 1;
  Paillier.add_plain t.pk c v

let add_plain t c v = add_plain_big t c (Bigint.of_int v)

let scalar_mul t c v =
  let client_ops = Cost.client_ops t.cost in
  client_ops.Cost.homomorphic <- client_ops.Cost.homomorphic + 1;
  Paillier.scalar_mul t.pk c v

let encrypt_constant t v = encrypt_online t (Bigint.of_int v)

let reveal t c =
  timed t Cost.Phase2 (fun () ->
      match
        Channel.request t.channel
          (Message.Reveal_request (Paillier.ciphertext_to_bigint c))
      with
      | Message.Reveal_reply v -> v
      | _ -> raise (Channel.Protocol_error "expected Reveal_reply"))

let finish t =
  join_refill t;
  Channel.close t.channel

let packing = packing_active
