open Import

type t = { key_bits : int; k : int; gamma_slack : int }

let default = { key_bits = 64; k = 10; gamma_slack = 2 }

let make ?(key_bits = default.key_bits) ?(k = default.k)
    ?(gamma_slack = default.gamma_slack) () =
  { key_bits; k; gamma_slack }

exception Insecure of string

let insecure fmt = Printf.ksprintf (fun s -> raise (Insecure s)) fmt

let alpha t =
  let rec log2_floor v acc = if v <= 1 then acc else log2_floor (v / 2) (acc + 1) in
  log2_floor t.k 0

type session = {
  params : t;
  beta : int;
  gamma : int;
  value_bound : Bigint.t;
  offset_lo : Bigint.t;
  offset_hi : Bigint.t;
}

let plan_bound t ~value_bound ~modulus =
  if t.k < 4 then insecure "random set size k = %d; need k >= 4 so that 0 < gamma - beta < alpha is satisfiable" t.k;
  let a = alpha t in
  if t.gamma_slack <= 0 || t.gamma_slack >= a then
    insecure "gamma_slack = %d violates 0 < gamma - beta < alpha (alpha = %d for k = %d)"
      t.gamma_slack a t.k;
  if Bigint.compare value_bound Bigint.one < 0 then
    invalid_arg "Params.plan_bound: value_bound must be positive";
  let beta = Stdlib.max 1 (Bigint.num_bits (Bigint.pred value_bound) - 1) in
  let gamma = beta + t.gamma_slack in
  let offset_lo = Bigint.succ (Bigint.shift_left Bigint.one gamma) in
  let offset_hi = Bigint.shift_left Bigint.one (gamma + 1) in
  (* Wrap-around guard: the largest masked candidate must stay below the
     Paillier plaintext modulus. *)
  let max_candidate = Bigint.add value_bound offset_hi in
  if Bigint.compare max_candidate modulus >= 0 then
    insecure
      "masked candidates (up to %s) would wrap around the %d-bit plaintext modulus; \
       use a larger key or smaller series/values"
      (Bigint.to_string max_candidate) (Bigint.num_bits modulus);
  { params = t; beta; gamma; value_bound; offset_lo; offset_hi }

let plan t ~max_value ~dimension ~client_length ~server_length ~modulus ~distance =
  if max_value <= 0 then invalid_arg "Params.plan: max_value must be positive";
  if dimension <= 0 then invalid_arg "Params.plan: dimension must be positive";
  if client_length <= 0 || server_length <= 0 then
    invalid_arg "Params.plan: series lengths must be positive";
  (* Strict plaintext bound: the largest value any matrix entry can take.
     Every local cost is at most d * max_value^2; a DTW warping path has at
     most m + n - 1 couplings; DFD entries never exceed a single cost. *)
  let max_cost = Bigint.of_int (dimension * max_value * max_value) in
  let value_bound =
    match distance with
    | `Dtw ->
      (* longest warping path: m + n - 1 couplings *)
      Bigint.succ (Bigint.mul_int max_cost (client_length + server_length - 1))
    | `Dfd ->
      (* DFD entries never exceed a single pairwise cost *)
      Bigint.succ max_cost
    | `Erp ->
      (* ERP alignments touch at most m + n elements (matches + gaps) *)
      Bigint.succ (Bigint.mul_int max_cost (client_length + server_length))
    | `Euclidean ->
      (* lockstep sum over min(m, n) elements; subsequence windows reuse
         this bound with the window length *)
      Bigint.succ (Bigint.mul_int max_cost (Stdlib.min client_length server_length))
  in
  plan_bound t ~value_bound ~modulus

let pp fmt t =
  Format.fprintf fmt "@[<h>{key_bits = %d; k = %d; gamma_slack = %d}@]" t.key_bits
    t.k t.gamma_slack

let pp_session fmt s =
  Format.fprintf fmt
    "@[<h>{beta = %d; gamma = %d; value_bound = %a; offsets in [%a, %a]}@]" s.beta
    s.gamma Bigint.pp s.value_bound Bigint.pp s.offset_lo Bigint.pp s.offset_hi
