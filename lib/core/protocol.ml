open Import

type result = {
  distance : Bigint.t;
  cost : Cost.t;
  stats : Stats.t;
  session : Params.session;
}

let distance_int r = Bigint.to_int_exn r.distance

let series_bound s = Stdlib.max 1 (Series.max_abs_value s)

let run_session : type a.
    distance_kind:Client.distance_kind ->
    runner:(Client.t -> a) ->
    ?params:Params.t -> ?seed:string -> ?max_value:int ->
    ?decryption:[ `Standard | `Crt ] -> ?offline:bool -> ?packing:bool ->
    ?jobs:int -> ?trace:Trace.t ->
    x:Series.t -> y:Series.t -> unit ->
    a * Cost.t * Stats.t * Params.session =
 fun ~distance_kind ~runner ?(params = Params.default) ?seed ?max_value
     ?decryption ?offline ?packing ?(jobs = 1) ?trace ~x ~y () ->
  let rng_of suffix =
    match seed with
    | Some s -> Secure_rng.of_seed_string (s ^ "/" ^ suffix)
    | None -> Secure_rng.system ()
  in
  let server_rng = rng_of "server" and client_rng = rng_of "client" in
  let server_max =
    match max_value with Some v -> v | None -> series_bound y
  in
  let client_max =
    match max_value with Some v -> v | None -> series_bound x
  in
  (* One shared pool: with a local channel both parties run in this
     process, and their parallel sections never overlap (strict
     request/reply alternation), so sharing lanes wastes nothing. *)
  let workers = Parallel.create jobs in
  (* Distances as small codes: the attr vocabulary is closed to numbers
     and phase tags, so even the span schema cannot leak free text. *)
  let distance_code =
    match distance_kind with `Dtw -> 0 | `Dfd -> 1 | `Erp -> 2 | `Euclidean -> 3
  in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown workers)
    (fun () ->
      Telemetry.span ~name:"protocol.session"
        ~attrs:
          [
            ("distance_code", Telemetry.Int distance_code);
            ("m", Telemetry.Int (Series.length x));
            ("n", Telemetry.Int (Series.length y));
            ("jobs", Telemetry.Int jobs);
          ]
      @@ fun () ->
      let server =
        Server.create ~params ?decryption ~workers ~rng:server_rng ~series:y
          ~max_value:server_max ()
      in
      let channel = Channel.local ?trace (Server.handle server) in
      let client =
        Client.connect ~params ?offline ?packing ~workers ~rng:client_rng
          ~series:x ~max_value:client_max ~distance:distance_kind channel
      in
      let value = runner client in
      Client.finish client;
      (* Fold the server's operation counters into the cost record (in a TCP
         deployment the server reports its own side). *)
      let cost = Client.cost client in
      Cost.set_jobs cost jobs;
      let server_ops = Server.ops server in
      let merged = Cost.server_ops cost in
      merged.Cost.encryptions <- merged.Cost.encryptions + server_ops.Cost.encryptions;
      merged.Cost.decryptions <- merged.Cost.decryptions + server_ops.Cost.decryptions;
      merged.Cost.homomorphic <- merged.Cost.homomorphic + server_ops.Cost.homomorphic;
      (value, cost, Channel.stats channel, Client.session client))

let pack (distance, cost, stats, session) = { distance; cost; stats; session }

type algo = [ `Dtw | `Dfd | `Erp | `Euclidean ]
type strategy = [ `Full | `Wavefront ]

type spec = {
  algo : algo;
  band : int option;
  strategy : strategy;
  gap : int array option;
  packing : bool;
}

let spec ?band ?(strategy = `Full) ?gap ?(packing = false) algo =
  { algo; band; strategy; gap; packing }

let algo_name = function
  | `Dtw -> "`Dtw"
  | `Dfd -> "`Dfd"
  | `Erp -> "`Erp"
  | `Euclidean -> "`Euclidean"

(* Validation happens here rather than in [spec] so record literals get
   the same checks as the smart constructor. *)
let runner_of_spec s : Client.t -> Bigint.t =
  (match (s.gap, s.algo) with
   | Some _, (`Dtw | `Dfd | `Euclidean) ->
     invalid_arg "Protocol.run: gap only applies to `Erp"
   | None, `Erp -> invalid_arg "Protocol.run: `Erp requires a gap element"
   | _ -> ());
  (match (s.band, s.strategy, s.algo) with
   | Some _, `Wavefront, _ ->
     invalid_arg "Protocol.run: banded wavefront is not implemented"
   | Some _, _, (`Erp | `Euclidean) ->
     invalid_arg
       (Printf.sprintf "Protocol.run: band does not apply to %s" (algo_name s.algo))
   | None, `Wavefront, (`Erp | `Euclidean) ->
     invalid_arg
       (Printf.sprintf "Protocol.run: wavefront does not apply to %s"
          (algo_name s.algo))
   | _ -> ());
  match (s.algo, s.band, s.strategy) with
  | `Dtw, Some band, _ -> Secure_dtw_banded.run ~band
  | `Dtw, None, `Wavefront -> Secure_dtw_wavefront.run_dtw
  | `Dtw, None, `Full -> Secure_dtw.run
  | `Dfd, Some band, _ -> Secure_dtw_banded.run_dfd ~band
  | `Dfd, None, `Wavefront -> Secure_dtw_wavefront.run_dfd
  | `Dfd, None, `Full -> Secure_dfd.run
  | `Erp, _, _ ->
    let gap = Option.get s.gap in
    Secure_erp.run ~gap
  | `Euclidean, _, _ -> Secure_euclidean.run

let distance_kind_of_algo : algo -> Client.distance_kind = fun a -> a

(* Closed-form count of protocol "values" for this implementation's exact
   message layout; the paper's mn(d + k + 4) appears as the dominant term
   of the DTW case. *)
let expected_values_transferred ~params ~m ~n ~d kind =
  let k = params.Params.k in
  let phase1 = n * (d + 1) in
  let reveal = 2 in
  match kind with
  | `Dtw ->
    let inner = (m - 1) * (n - 1) * (k + 3) in
    phase1 + inner + reveal
  | `Dfd ->
    let borders = (m - 1 + (n - 1)) * (k + 2) in
    let inner = (m - 1) * (n - 1) * (k + 3 + k + 2) in
    phase1 + borders + inner + reveal

(* The pruning stage of a 1-vs-N query, same conventions (both directions,
   unpacked profile).  Per candidate, per segment, per dimension: the two
   sketch ciphertexts in, one 3-way secure-max instance (3 + k - 1 masked
   candidates out, one result in); plus one blinded verdict ciphertext per
   candidate.  This is also the number the admission ledger's
   [declare_query] allowance is sized from: [candidates * (segments*d + 1)]
   chargeable cells. *)
let expected_query_values ~params ~candidates ~segments ~d =
  let k = params.Params.k in
  (candidates * segments * d * (k + 5)) + candidates

let run ~spec:s ?params ?seed ?max_value ?decryption ?offline ?jobs ?trace ~x ~y () =
  let runner = runner_of_spec s in
  let result =
    pack
      (run_session ~distance_kind:(distance_kind_of_algo s.algo) ~runner ?params
         ?seed ?max_value ?decryption ?offline ~packing:s.packing ?jobs ?trace ~x
         ~y ())
  in
  (* Cost attribution: the unbanded, unpacked DTW/DFD paths have exact
     closed forms, so every such run is checked against the model.  Banded
     and gap variants have data-independent but spec-shaped counts this
     module does not model; packed framing counts ciphertexts, not
     values. *)
  (match (s.algo, s.band, s.packing) with
  | ((`Dtw | `Dfd) as kind), None, false ->
    let predicted =
      expected_values_transferred
        ~params:(Option.value params ~default:Params.default)
        ~m:(Series.length x) ~n:(Series.length y) ~d:(Series.dimension x) kind
    in
    ignore
      (Ledger.record ~workload:Ledger.Pairwise ~predicted
         ~actual:(Stats.total_values result.stats))
  | _ -> ());
  result

(* Legacy entry points: thin wrappers over [run], kept so callers can
   migrate incrementally.  Each preserves its historical signature
   (run_dfd & co never took ?trace). *)

let run_dtw ?params ?seed ?max_value ?decryption ?offline ?jobs ?trace ~x ~y () =
  run ~spec:(spec `Dtw) ?params ?seed ?max_value ?decryption ?offline ?jobs
    ?trace ~x ~y ()

let run_dfd ?params ?seed ?max_value ?decryption ?offline ?jobs ~x ~y () =
  run ~spec:(spec `Dfd) ?params ?seed ?max_value ?decryption ?offline ?jobs ~x
    ~y ()

let run_erp ?params ?seed ?max_value ?decryption ?offline ?jobs ~gap ~x ~y () =
  run ~spec:(spec ~gap `Erp) ?params ?seed ?max_value ?decryption ?offline
    ?jobs ~x ~y ()

let run_dtw_banded ?params ?seed ?max_value ?decryption ?offline ?jobs ?trace ~band ~x ~y () =
  run ~spec:(spec ~band `Dtw) ?params ?seed ?max_value ?decryption ?offline
    ?jobs ?trace ~x ~y ()

let run_dfd_banded ?params ?seed ?max_value ?decryption ?offline ?jobs ?trace ~band ~x ~y () =
  run ~spec:(spec ~band `Dfd) ?params ?seed ?max_value ?decryption ?offline
    ?jobs ?trace ~x ~y ()

let run_euclidean ?params ?seed ?max_value ?decryption ?offline ?jobs ~x ~y () =
  run ~spec:(spec `Euclidean) ?params ?seed ?max_value ?decryption ?offline
    ?jobs ~x ~y ()

let run_dtw_wavefront ?params ?seed ?max_value ?decryption ?offline ?jobs ?trace ~x ~y () =
  run ~spec:(spec ~strategy:`Wavefront `Dtw) ?params ?seed ?max_value
    ?decryption ?offline ?jobs ?trace ~x ~y ()

let run_dfd_wavefront ?params ?seed ?max_value ?decryption ?offline ?jobs ~x ~y () =
  run ~spec:(spec ~strategy:`Wavefront `Dfd) ?params ?seed ?max_value
    ?decryption ?offline ?jobs ~x ~y ()

type windows_result = {
  window_distances : Bigint.t array;
  windows_cost : Cost.t;
  windows_stats : Stats.t;
}

let subsequence ?params ?seed ?max_value ?decryption ?offline ?jobs ~x ~y () =
  let distances, cost, stats, _session =
    run_session ~distance_kind:`Euclidean ~runner:Secure_euclidean.sliding_windows
      ?params ?seed ?max_value ?decryption ?offline ?jobs ~x ~y ()
  in
  { window_distances = distances; windows_cost = cost; windows_stats = stats }

let run_subsequence = subsequence

