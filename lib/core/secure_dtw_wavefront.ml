(* Cells of one anti-diagonal: (i, j) with i + j = s, 1 <= i < m,
   1 <= j < n, ascending in i.

   The anti-diagonal is both the communication batch (its cells travel in
   one Batch_min_request) and the parallelism unit: the cells of a
   diagonal are data-independent, so Client.secure_min_batch fans their
   masked-candidate preparation out over the session's worker pool, and
   the server decrypts the whole diagonal's candidates as one flat batch.
   The fan-out lives in the batch entry points, not here — the wavefront
   driver only decides what is batched together. *)
let diagonal_cells ~m ~n s =
  let lo = Stdlib.max 1 (s - (n - 1)) in
  let hi = Stdlib.min (m - 1) (s - 1) in
  if hi < lo then [||]
  else Array.init (hi - lo + 1) (fun idx -> (lo + idx, s - (lo + idx)))

module Telemetry = Ppst_telemetry.Telemetry

(* Per-diagonal spans are Debug-level: a 1024-point alignment has ~2k of
   them, which would swamp an Info stream but is exactly what a JSONL
   trace wants for the latency-vs-batch-size table. *)
let diagonal_span name ~s ~cells f =
  Telemetry.span ~level:Telemetry.Debug ~name
    ~attrs:[ ("s", Telemetry.Int s); ("cells", Telemetry.Int cells) ]
    f

let run_dtw client =
  Client.require_plan client `Dtw;
  let m = Client.client_length client in
  let n = Client.server_length client in
  Telemetry.span ~name:"dtw.wavefront"
    ~attrs:[ ("m", Telemetry.Int m); ("n", Telemetry.Int n) ]
  @@ fun () ->
  (* one batched round per anti-diagonal: provision each diagonal's
     randomness by its own instance sizes (all three-input minima) *)
  let provision = ref m in
  for s = 2 to m + n - 2 do
    let cells = Array.length (diagonal_cells ~m ~n s) in
    if cells > 0 then
      provision := !provision + Client.round_randomness client (Array.make cells 3)
  done;
  Client.precompute_randomness client !provision;
  let cost = Client.fetch_cost_matrix client in
  let matrix = Array.make_matrix m n cost.(0).(0) in
  for i = 1 to m - 1 do
    matrix.(i).(0) <- Client.add client cost.(i).(0) matrix.(i - 1).(0)
  done;
  for j = 1 to n - 1 do
    matrix.(0).(j) <- Client.add client cost.(0).(j) matrix.(0).(j - 1)
  done;
  for s = 2 to m + n - 2 do
    let cells = diagonal_cells ~m ~n s in
    diagonal_span "dtw.diagonal" ~s ~cells:(Array.length cells) @@ fun () ->
    let instances =
      Array.map
        (fun (i, j) ->
          [| matrix.(i - 1).(j - 1); matrix.(i - 1).(j); matrix.(i).(j - 1) |])
        cells
    in
    let minima = Client.secure_min_batch client instances in
    Array.iteri
      (fun idx (i, j) -> matrix.(i).(j) <- Client.add client cost.(i).(j) minima.(idx))
      cells
  done;
  Client.reveal client matrix.(m - 1).(n - 1)

let run_dfd client =
  Client.require_plan client `Dfd;
  let m = Client.client_length client in
  let n = Client.server_length client in
  Telemetry.span ~name:"dfd.wavefront"
    ~attrs:[ ("m", Telemetry.Int m); ("n", Telemetry.Int n) ]
  @@ fun () ->
  (* borders run as singleton max batches; each diagonal contributes one
     min batch (three-input instances) and one max batch (two-input) *)
  let per_max = Client.round_randomness client [| 2 |] in
  let provision = ref (m + (((m - 1) + (n - 1)) * per_max)) in
  for s = 2 to m + n - 2 do
    let cells = Array.length (diagonal_cells ~m ~n s) in
    if cells > 0 then
      provision :=
        !provision
        + Client.round_randomness client (Array.make cells 3)
        + Client.round_randomness client (Array.make cells 2)
  done;
  Client.precompute_randomness client !provision;
  let cost = Client.fetch_cost_matrix client in
  let matrix = Array.make_matrix m n cost.(0).(0) in
  (* both borders are chains of maxima: batch each border column/row as
     one sequence of singleton diagonals is pointless — instead batch the
     two borders jointly per step along the diagonal index *)
  for i = 1 to m - 1 do
    matrix.(i).(0) <- (Client.secure_max_batch client [| [| cost.(i).(0); matrix.(i - 1).(0) |] |]).(0)
  done;
  for j = 1 to n - 1 do
    matrix.(0).(j) <- (Client.secure_max_batch client [| [| cost.(0).(j); matrix.(0).(j - 1) |] |]).(0)
  done;
  for s = 2 to m + n - 2 do
    let cells = diagonal_cells ~m ~n s in
    diagonal_span "dfd.diagonal" ~s ~cells:(Array.length cells) @@ fun () ->
    let min_instances =
      Array.map
        (fun (i, j) ->
          [| matrix.(i - 1).(j - 1); matrix.(i - 1).(j); matrix.(i).(j - 1) |])
        cells
    in
    let minima = Client.secure_min_batch client min_instances in
    let max_instances =
      Array.mapi (fun idx (i, j) -> [| cost.(i).(j); minima.(idx) |]) cells
    in
    let maxima = Client.secure_max_batch client max_instances in
    Array.iteri (fun idx (i, j) -> matrix.(i).(j) <- maxima.(idx)) cells
  done;
  Client.reveal client matrix.(m - 1).(n - 1)
