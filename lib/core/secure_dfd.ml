module Telemetry = Ppst_telemetry.Telemetry

(* Paper Algorithm 2 on ciphertexts: cell = Enc(max{cost, min of three
   predecessors}); both extremes go through masked server rounds. *)
let run_matrix client =
  Client.require_plan client `Dfd;
  (* Offline phase: m phase-1 factors, one round's worth per minimum
     (three inputs) and per maximum (two inputs — inner cells and both
     borders). *)
  let m = Client.client_length client in
  let n = Client.server_length client in
  Telemetry.span ~name:"dfd.full"
    ~attrs:[ ("m", Telemetry.Int m); ("n", Telemetry.Int n) ]
  @@ fun () ->
  let per_min = Client.round_randomness client [| 3 |] in
  let per_max = Client.round_randomness client [| 2 |] in
  let max_rounds = ((m - 1) * (n - 1)) + (m - 1) + (n - 1) in
  Client.precompute_randomness client
    (m + ((m - 1) * (n - 1) * per_min) + (max_rounds * per_max));
  let cost = Client.fetch_cost_matrix client in
  let matrix = Array.make_matrix m n cost.(0).(0) in
  for i = 1 to m - 1 do
    matrix.(i).(0) <- Client.secure_max client [| cost.(i).(0); matrix.(i - 1).(0) |]
  done;
  for j = 1 to n - 1 do
    matrix.(0).(j) <- Client.secure_max client [| cost.(0).(j); matrix.(0).(j - 1) |]
  done;
  for i = 1 to m - 1 do
    for j = 1 to n - 1 do
      let minimum =
        Client.secure_min client
          [| matrix.(i - 1).(j - 1); matrix.(i - 1).(j); matrix.(i).(j - 1) |]
      in
      matrix.(i).(j) <- Client.secure_max client [| cost.(i).(j); minimum |]
    done
  done;
  let distance = Client.reveal client matrix.(m - 1).(n - 1) in
  (matrix, distance)

let run client = snd (run_matrix client)
