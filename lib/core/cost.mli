(** Per-party, per-phase accounting of cryptographic work and wall-clock
    time — the measurement harness behind the paper's Figures 5–11.

    Phase numbering follows the paper: phase 1 computes the encrypted
    squared Euclidean distances, phase 2 finds encrypted minima, phase 3
    (DFD only) finds encrypted maxima. *)

type phase = Phase1 | Phase2 | Phase3

type ops = {
  mutable encryptions : int;
  mutable decryptions : int;
  mutable homomorphic : int;  (** ciphertext additions / scalar powers *)
}

type t

val create : unit -> t
val client_ops : t -> ops
val server_ops : t -> ops

val add_client_time : t -> phase -> float -> unit
val add_server_time : t -> phase -> float -> unit

val add_client_offline : t -> float -> unit
(** Record offline precomputation time (the client's randomness-pool
    refills — work done before or outside the interactive phases). *)

val client_seconds : t -> phase -> float
val server_seconds : t -> phase -> float

val client_offline_seconds : t -> float

val client_total_seconds : t -> float
(** Online client time (sum over phases; excludes offline). *)

val server_total_seconds : t -> float

val total_seconds : t -> float
(** Everything: both parties' online time plus the client's offline
    precomputation. *)

val set_jobs : t -> int -> unit
(** Record the worker-pool size the run executed with (default 1). *)

val jobs : t -> int

val set_pool_misses : t -> int -> unit
(** Record the client's randomness-pool miss count — encryptions that
    paid an {e online} [r^n] exponentiation because the offline pool was
    empty.  A correctly provisioned offline run reports 0; the
    offline/online cost-split experiments assert this. *)

val pool_misses : t -> int

val merge : t -> t -> t
(** Counters and times add; [jobs] takes the maximum; [pool_misses]
    add. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Compact single-line JSON object (machine-readable [pp]): per-party op
    counts, per-phase seconds arrays, offline seconds, jobs, pool misses.
    Embedded verbatim in the bench BENCH_*.json reports. *)
