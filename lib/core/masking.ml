open Import

type prepared = { candidates : Paillier.ciphertext array; unmask : Bigint.t }

(* Distinct offsets, sorted ascending.  Distinctness matters at the
   extremes: a duplicated r_min (r_max) would let two decoys share the
   extreme offset and slightly sharpen the server's guessing attack, so we
   redraw collisions (the range has at least 2^γ values, collisions are
   rare). *)
let draw_offsets ~rng ~session ~count =
  let module S = Ppst_rng.Secure_rng in
  let lo = session.Params.offset_lo and hi = session.Params.offset_hi in
  let rec fill acc n =
    if n = 0 then acc
    else begin
      let r = S.in_range rng ~lo ~hi in
      if List.exists (Bigint.equal r) acc then fill acc n
      else fill (r :: acc) (n - 1)
    end
  in
  let offsets = Array.of_list (fill [] count) in
  Array.sort Bigint.compare offsets;
  offsets

(* The candidate construction split in two: [plan] performs every rng
   draw (offsets, decoy sources, shuffle permutation) — stateful,
   sequential — while [apply_plan] performs the encryptions and
   homomorphic adds — pure given an encryptor, so instances can fan out
   over a Domain pool without the worker count touching the rng stream. *)
type plan = {
  pivot : Bigint.t;
  decoy_offsets : Bigint.t array;
  decoy_sources : int array;  (** index into the inputs, per decoy *)
  perm : int array;  (** shuffled identity over all candidates *)
}

let plan ~rng ~session ~extreme ~n_inputs =
  if n_inputs = 0 then invalid_arg "Masking.plan: no inputs";
  let module S = Ppst_rng.Secure_rng in
  let k = session.Params.params.Params.k in
  let offsets = draw_offsets ~rng ~session ~count:k in
  let pivot, decoy_offsets =
    match extreme with
    | `Min -> (offsets.(0), Array.sub offsets 1 (k - 1))
    | `Max -> (offsets.(k - 1), Array.sub offsets 0 (k - 1))
  in
  let decoy_sources = Array.map (fun _ -> S.int rng n_inputs) decoy_offsets in
  let perm = Array.init (n_inputs + k - 1) Fun.id in
  S.shuffle_in_place rng perm;
  { pivot; decoy_offsets; decoy_sources; perm }

let plan_encryptions p ~n_inputs = n_inputs + Array.length p.decoy_offsets

let apply_plan ~encrypt ~pk p (inputs : Paillier.ciphertext array) =
  (* Encryption order is fixed — pivot per input, then each decoy — so a
     caller feeding pre-acquired randomness consumes it identically at
     any pool size. *)
  let masked = Array.map (fun c -> Paillier.add pk c (encrypt p.pivot)) inputs in
  let decoys =
    Array.map2
      (fun source r -> Paillier.add pk inputs.(source) (encrypt r))
      p.decoy_sources p.decoy_offsets
  in
  let unshuffled = Array.append masked decoys in
  { candidates = Array.map (fun i -> unshuffled.(i)) p.perm; unmask = p.pivot }

(* Packed-path variant: add the offsets as plaintext constants
   ([add_plain], one multiplication) instead of encrypting each one.
   The candidates then carry no fresh per-candidate noise — sound only
   when the caller re-randomizes the pack as a whole (one pooled [r^n]
   per packed ciphertext makes the packed value's noise uniform; see
   SECURITY.md).  Plaintext relationships, shuffle and unmask pivot are
   exactly those of [apply_plan]. *)
let apply_plan_plain ~pk p (inputs : Paillier.ciphertext array) =
  let masked = Array.map (fun c -> Paillier.add_plain pk c p.pivot) inputs in
  let decoys =
    Array.map2
      (fun source r -> Paillier.add_plain pk inputs.(source) r)
      p.decoy_sources p.decoy_offsets
  in
  let unshuffled = Array.append masked decoys in
  { candidates = Array.map (fun i -> unshuffled.(i)) p.perm; unmask = p.pivot }

let prepare ?encrypt ~extreme ~pk ~rng ~session (inputs : Paillier.ciphertext array) =
  if Array.length inputs = 0 then invalid_arg "Masking.prepare: no inputs";
  let encrypt = match encrypt with Some f -> f | None -> Paillier.encrypt pk rng in
  let p = plan ~rng ~session ~extreme ~n_inputs:(Array.length inputs) in
  apply_plan ~encrypt ~pk p inputs

let prepare_min ?encrypt ~pk ~rng ~session inputs =
  prepare ?encrypt ~extreme:`Min ~pk ~rng ~session inputs

let prepare_max ?encrypt ~pk ~rng ~session inputs =
  prepare ?encrypt ~extreme:`Max ~pk ~rng ~session inputs

let unmask ~pk prepared reply =
  Paillier.add_plain pk reply (Bigint.neg prepared.unmask)

let unmask_min = unmask
let unmask_max = unmask
