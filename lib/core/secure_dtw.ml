module Telemetry = Ppst_telemetry.Telemetry

(* Paper Algorithm 1 on ciphertexts: cell = Enc(cost) + Enc(min of the
   three predecessors), the min obtained through the phase-2 round. *)
let run_matrix client =
  Client.require_plan client `Dtw;
  (* Offline phase: precompute all the randomness this run will consume —
     one factor per row for phase 1, one round's worth per inner-cell
     minimum (k + 2 offsets unpacked, the pack count when packing). *)
  let m = Client.client_length client in
  let n = Client.server_length client in
  Telemetry.span ~name:"dtw.full"
    ~attrs:[ ("m", Telemetry.Int m); ("n", Telemetry.Int n) ]
  @@ fun () ->
  let per_min = Client.round_randomness client [| 3 |] in
  Client.precompute_randomness client (m + ((m - 1) * (n - 1) * per_min));
  let cost = Client.fetch_cost_matrix client in
  let matrix = Array.make_matrix m n cost.(0).(0) in
  for i = 1 to m - 1 do
    matrix.(i).(0) <- Client.add client cost.(i).(0) matrix.(i - 1).(0)
  done;
  for j = 1 to n - 1 do
    matrix.(0).(j) <- Client.add client cost.(0).(j) matrix.(0).(j - 1)
  done;
  for i = 1 to m - 1 do
    for j = 1 to n - 1 do
      let minimum =
        Client.secure_min client
          [| matrix.(i - 1).(j - 1); matrix.(i - 1).(j); matrix.(i).(j - 1) |]
      in
      matrix.(i).(j) <- Client.add client cost.(i).(j) minimum
    done
  done;
  let distance = Client.reveal client matrix.(m - 1).(n - 1) in
  (matrix, distance)

let run client = snd (run_matrix client)
