(** Persistent server-side series store for 1-vs-N catalog search.

    A store is an id-keyed, insertion-ordered collection of integer
    series sharing one dimension.  The order is part of the contract:
    wire-level candidate indices (catalog-list, query-submit) refer to
    positions in {!ids}/{!records}, so enumeration must be stable across
    [save_dir]/[load_dir] round trips — ids are written and loaded in
    lexicographic filename order.

    The store itself is plaintext and lives on the server; clients only
    ever learn ids and lengths (via the catalog-list message) plus
    whatever the secure protocols reveal. *)

open Import

type t

val create : unit -> t
(** An empty store. *)

val insert : t -> id:string -> Series.t -> unit
(** Add a record under [id].
    @raise Invalid_argument if [id] is already present, is empty or
    contains a newline, or the series dimension differs from existing
    records. *)

val evict : t -> id:string -> bool
(** Remove a record; [true] if it was present. *)

val find : t -> id:string -> Series.t option
val mem : t -> id:string -> bool

val length : t -> int
(** Number of records. *)

val ids : t -> string array
(** Ids in insertion order (load order for loaded stores). *)

val records : t -> Series.t array
(** Records in the same order as {!ids}. *)

val lengths : t -> int array
(** Series lengths in the same order as {!ids}. *)

val dimension : t -> int option
(** Shared dimension, [None] while empty. *)

val max_abs_value : t -> int
(** Largest absolute coordinate over all records ([0] when empty). *)

val load_file : string -> t
(** Load one CSV file of blank-line-separated blocks ({!Csv.load_many}).
    A single block gets the file's basename (sans extension) as id;
    multiple blocks get [base#0], [base#1], ... *)

val load_dir : string -> t
(** Load every [*.csv] file in a directory, in lexicographic filename
    order, via the {!load_file} id scheme.
    @raise Invalid_argument if the directory has no [*.csv] files. *)

val save_dir : ?disk_faults:Ppst_transport.Faults.Disk.t -> t -> string -> unit
(** Write each record to [<dir>/<id>.csv] (creating [dir] if needed).
    Ids containing [/] or [#] are escaped with [_] so the round trip
    stays within one directory.

    Each file is written crash-safely: the CSV lands in a temp file
    (suffix [.csv.tmp], which {!load_dir} ignores), is fsynced, and is
    atomically renamed over the final name; the directory is fsynced
    once at the end.  A crash mid-save therefore leaves every id either
    fully old or fully new, never truncated.

    [?disk_faults] injects environmental failures (ENOSPC on write, EIO
    on fsync, a torn rename) into that sequence for degraded-mode
    tests; the save raises the injected [Unix.Unix_error] and the
    guarantee above still holds — no record is ever left truncated. *)

val generate :
  seed:int -> count:int -> length:int -> dim:int -> max_value:int -> t
(** Seeded synthetic catalog of [count] random-vector series (ids
    ["0"].."<count-1>"), for benches and tests. *)
