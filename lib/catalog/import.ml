(* Short aliases for the substrate libraries, opened by every module (and
   interface) of the catalog library. *)

module Series = Ppst_timeseries.Series
module Csv = Ppst_timeseries.Csv
module Generate = Ppst_timeseries.Generate
