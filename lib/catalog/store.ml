open Import

type t = {
  tbl : (string, Series.t) Hashtbl.t;
  mutable order : string list;  (* reverse insertion order *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let dimension t =
  (* The last-inserted record suffices: every insert checked against it. *)
  match t.order with
  | [] -> None
  | id :: _ -> Some (Series.dimension (Hashtbl.find t.tbl id))

let valid_id id =
  String.length id > 0 && not (String.contains id '\n') && not (String.contains id '\r')

let insert t ~id series =
  if not (valid_id id) then
    invalid_arg "Store.insert: id must be non-empty and newline-free";
  if Hashtbl.mem t.tbl id then
    invalid_arg (Printf.sprintf "Store.insert: duplicate id %S" id);
  (match dimension t with
  | Some d when d <> Series.dimension series ->
    invalid_arg
      (Printf.sprintf "Store.insert: dimension %d differs from catalog dimension %d"
         (Series.dimension series) d)
  | _ -> ());
  Hashtbl.add t.tbl id series;
  t.order <- id :: t.order

let evict t ~id =
  if Hashtbl.mem t.tbl id then begin
    Hashtbl.remove t.tbl id;
    t.order <- List.filter (fun x -> x <> id) t.order;
    true
  end
  else false

let find t ~id = Hashtbl.find_opt t.tbl id
let mem t ~id = Hashtbl.mem t.tbl id
let length t = List.length t.order
let ids t = Array.of_list (List.rev t.order)
let records t = Array.map (fun id -> Hashtbl.find t.tbl id) (ids t)
let lengths t = Array.map Series.length (records t)

let max_abs_value t =
  Array.fold_left (fun acc s -> Stdlib.max acc (Series.max_abs_value s)) 0 (records t)

let basename_sans_ext path =
  let base = Filename.basename path in
  match Filename.extension base with
  | "" -> base
  | ext -> String.sub base 0 (String.length base - String.length ext)

let load_file_into t path =
  let base = basename_sans_ext path in
  match Csv.load_many path with
  | [ series ] -> insert t ~id:base series
  | blocks ->
    List.iteri (fun k series -> insert t ~id:(Printf.sprintf "%s#%d" base k) series) blocks

let load_file path =
  let t = create () in
  load_file_into t path;
  t

let load_dir dir =
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".csv")
    |> List.sort String.compare
  in
  if entries = [] then
    invalid_arg (Printf.sprintf "Store.load_dir: no *.csv files in %s" dir);
  let t = create () in
  List.iter (fun f -> load_file_into t (Filename.concat dir f)) entries;
  t

let escape_id id =
  String.map (fun c -> match c with '/' | '\\' | '#' -> '_' | c -> c) id

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
        try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let save_dir ?disk_faults t dir =
  let check op =
    match disk_faults with
    | None -> ()
    | Some f -> Ppst_transport.Faults.Disk.check f op
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* Crash safety: each CSV lands under a temp name that load_dir ignores
     (no .csv suffix), is fsynced, then atomically renamed over the final
     path.  A crash mid-save leaves either the old series or the new one,
     never a truncated file; stray .tmp files are invisible to loads. *)
  Array.iter
    (fun id ->
      let series = Hashtbl.find t.tbl id in
      let final = Filename.concat dir (escape_id id ^ ".csv") in
      let tmp = final ^ ".tmp" in
      check Ppst_transport.Faults.Disk.Write;
      Csv.save tmp series;
      check Ppst_transport.Faults.Disk.Fsync;
      fsync_path tmp;
      check Ppst_transport.Faults.Disk.Rename;
      Sys.rename tmp final)
    (ids t);
  fsync_path dir

let generate ~seed ~count ~length ~dim ~max_value =
  if count <= 0 then invalid_arg "Store.generate: count must be positive";
  let t = create () in
  for i = 0 to count - 1 do
    let series =
      Generate.random_vectors ~seed:(seed + i) ~length ~dim ~max_value
    in
    insert t ~id:(string_of_int i) series
  done;
  t
