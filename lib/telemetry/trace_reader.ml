(* Reader for the JSONL traces Telemetry.jsonl_sink writes: a minimal
   hand-rolled JSON parser (the toolchain has no JSON library, by
   design), an entry decoder, per-phase/per-round aggregation for
   ppst_analyze, and a leakage lint for scripts/ci.sh. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- JSON parsing --------------------------------------------------------- *)

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> parse_error "expected '%c' at %d, found '%c'" c !pos d
    | None -> parse_error "expected '%c' at %d, found end of input" c !pos
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else parse_error "bad literal at %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then parse_error "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 > n then parse_error "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with Failure _ -> parse_error "bad \\u escape"
           in
           (* BMP-only decoding is plenty: our writer never emits \u *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> parse_error "unknown escape '\\%c'" e);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then parse_error "expected a number at %d" start;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> parse_error "bad number %S" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> parse_error "expected ',' or '}' at %d" !pos
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> parse_error "expected ',' or ']' at %d" !pos
        in
        elements []
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing bytes after JSON value at %d" !pos;
  v

(* --- trace entries -------------------------------------------------------- *)

type kind = Start | End | Point

type entry = {
  kind : kind;
  id : int;  (* 0 for points *)
  name : string;
  t : float;
  dt : float;  (* 0 except for End *)
  attrs : (string * json) list;
}

let field obj key = List.assoc_opt key obj

let num_field obj key =
  match field obj key with
  | Some (Num f) -> f
  | _ -> parse_error "missing numeric field %S" key

let entry_of_line line =
  match json_of_string line with
  | Obj obj -> begin
    let kind =
      match field obj "ev" with
      | Some (Str "start") -> Start
      | Some (Str "end") -> End
      | Some (Str "point") -> Point
      | _ -> parse_error "missing or unknown \"ev\" field"
    in
    let name =
      match field obj "name" with
      | Some (Str s) -> s
      | _ -> parse_error "missing \"name\" field"
    in
    let attrs =
      match field obj "attrs" with
      | Some (Obj a) -> a
      | None -> []
      | Some _ -> parse_error "\"attrs\" is not an object"
    in
    {
      kind;
      id = (match field obj "id" with Some (Num f) -> int_of_float f | _ -> 0);
      name;
      t = num_field obj "t";
      dt = (match kind with End -> num_field obj "dt" | _ -> 0.0);
      attrs;
    }
  end
  | _ -> parse_error "trace line is not a JSON object"

type tail = Complete | Truncated of { line : int; reason : string }

(* A malformed FINAL line is an expected artifact of a writer killed
   mid-record (the server dying between write and flush), so it yields a
   typed [Truncated] tail instead of an exception; a malformed line with
   well-formed lines after it means real corruption and still raises. *)
let read_lines_partial ic =
  let rec slurp lineno acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | line -> slurp (lineno + 1) ((lineno, line) :: acc)
  in
  let raw = slurp 1 [] in
  let last_lineno = match List.rev raw with (n, _) :: _ -> n | [] -> 0 in
  let rec go acc = function
    | [] -> (List.rev acc, Complete)
    | (_, "") :: rest -> go acc rest
    | (lineno, line) :: rest -> begin
      match entry_of_line line with
      | entry -> go (entry :: acc) rest
      | exception Parse_error m ->
        if lineno = last_lineno then
          (List.rev acc, Truncated { line = lineno; reason = m })
        else parse_error "line %d: %s" lineno m
    end
  in
  go [] raw

let read_lines ic =
  match read_lines_partial ic with
  | entries, Complete -> entries
  | _, Truncated { line; reason } -> parse_error "line %d: %s" line reason

let read_file_partial path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      read_lines_partial ic)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_lines ic)

(* --- leakage lint --------------------------------------------------------- *)

(* The writer can only emit what the Telemetry.value variant allows, so
   any violation here means a foreign line (or a future regression)
   snuck into the trace: string values outside the phase enum, numbers
   big enough to be plaintexts/offsets, nested structures. *)
let allowed_strings = [ "phase1"; "phase2"; "phase3"; "offline" ]
let max_magnitude = 1e15

let lint_entry e =
  if String.length e.name > 64 then
    Some (Printf.sprintf "span name %S longer than 64 bytes" e.name)
  else
    List.fold_left
      (fun acc (k, v) ->
        match acc with
        | Some _ -> acc
        | None ->
          if String.length k > 32 then
            Some (Printf.sprintf "attribute key %S longer than 32 bytes" k)
          else begin
            match v with
            | Num f when Float.abs f > max_magnitude ->
              Some (Printf.sprintf "attribute %S carries an oversized number" k)
            | Num _ | Bool _ -> None
            | Str s when List.mem s allowed_strings -> None
            | Str s ->
              Some (Printf.sprintf "attribute %S carries a free-form string %S" k s)
            | Null | Arr _ | Obj _ ->
              Some (Printf.sprintf "attribute %S is not a scalar" k)
          end)
      None e.attrs

(* --- aggregation ---------------------------------------------------------- *)

type span_row = { span_name : string; span_count : int; total_s : float }

type round_row = {
  opcode : int;
  round_count : int;
  request_bytes : int;
  reply_bytes : int;
  latency_s : float;
}

type summary = {
  spans : span_row list;  (* by name, alphabetical *)
  rounds : round_row list;  (* by opcode, ascending *)
  total_round_bytes : int;
  total_rounds : int;
  total_latency_s : float;
}

let int_attr e key =
  match List.assoc_opt key e.attrs with
  | Some (Num f) -> int_of_float f
  | _ -> 0

let float_attr e key =
  match List.assoc_opt key e.attrs with Some (Num f) -> f | _ -> 0.0

let summarize entries =
  let spans : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  let rounds : (int, int * int * int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.kind with
      | End ->
        let count, total =
          Option.value (Hashtbl.find_opt spans e.name) ~default:(0, 0.0)
        in
        Hashtbl.replace spans e.name (count + 1, total +. e.dt)
      | Point when e.name = "channel.round" ->
        let opcode = int_attr e "opcode" in
        let count, req, rep, lat =
          Option.value (Hashtbl.find_opt rounds opcode) ~default:(0, 0, 0, 0.0)
        in
        Hashtbl.replace rounds opcode
          ( count + 1,
            req + int_attr e "request_bytes",
            rep + int_attr e "reply_bytes",
            lat +. float_attr e "latency_s" )
      | _ -> ())
    entries;
  let span_rows =
    Hashtbl.fold
      (fun name (count, total) acc ->
        { span_name = name; span_count = count; total_s = total } :: acc)
      spans []
    |> List.sort (fun a b -> String.compare a.span_name b.span_name)
  in
  let round_rows =
    Hashtbl.fold
      (fun opcode (count, req, rep, lat) acc ->
        {
          opcode;
          round_count = count;
          request_bytes = req;
          reply_bytes = rep;
          latency_s = lat;
        }
        :: acc)
      rounds []
    |> List.sort (fun a b -> compare a.opcode b.opcode)
  in
  {
    spans = span_rows;
    rounds = round_rows;
    total_round_bytes =
      List.fold_left
        (fun acc r -> acc + r.request_bytes + r.reply_bytes)
        0 round_rows;
    total_rounds = List.fold_left (fun acc r -> acc + r.round_count) 0 round_rows;
    total_latency_s =
      List.fold_left (fun acc r -> acc +. r.latency_s) 0.0 round_rows;
  }

let pp_summary ?(opcode_name = fun o -> Printf.sprintf "0x%02x" o) fmt s =
  Format.fprintf fmt "@[<v>spans:@,";
  Format.fprintf fmt "  %-28s %8s %12s@," "name" "count" "total s";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-28s %8d %12.6f@," r.span_name r.span_count r.total_s)
    s.spans;
  Format.fprintf fmt "rounds (request/reply pairs):@,";
  Format.fprintf fmt "  %-24s %8s %12s %12s %12s@," "opcode" "count" "req bytes"
    "reply bytes" "latency s";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-24s %8d %12d %12d %12.6f@," (opcode_name r.opcode)
        r.round_count r.request_bytes r.reply_bytes r.latency_s)
    s.rounds;
  Format.fprintf fmt "total: %d rounds, %d bytes, %.6f s@]" s.total_rounds
    s.total_round_bytes s.total_latency_s
