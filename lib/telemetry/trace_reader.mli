(** Reader for {!Telemetry.jsonl_sink} traces: a minimal hand-rolled
    JSON parser (no external JSON dependency), per-phase/per-round
    aggregation (the [ppst_analyze trace] table), and a leakage lint
    used by [scripts/ci.sh]. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val json_of_string : string -> json
(** @raise Parse_error on malformed input or trailing bytes. *)

type kind = Start | End | Point

type entry = {
  kind : kind;
  id : int;  (** 0 for points *)
  name : string;
  t : float;
  dt : float;  (** 0 except for [End] *)
  attrs : (string * json) list;
}

val entry_of_line : string -> entry
(** @raise Parse_error when the line is not a telemetry record. *)

type tail = Complete | Truncated of { line : int; reason : string }

val read_file_partial : string -> entry list * tail
(** Like {!read_file}, but a malformed {e final} line — the expected
    artifact of a writer killed mid-record — is reported as a typed
    [Truncated] tail alongside every complete entry before it, instead of
    raising.  A malformed line followed by well-formed lines still raises
    [Parse_error] (that is corruption, not truncation).
    @raise Sys_error if unreadable. *)

val read_file : string -> entry list
(** Blank lines are skipped. @raise Parse_error with the line number on
    the first malformed line (including a truncated final line).
    @raise Sys_error if unreadable. *)

val lint_entry : entry -> string option
(** Leakage lint: [Some reason] when the entry carries anything the
    telemetry value variant could not have produced — free-form strings,
    numbers above 10^15 (sizes/opcodes/durations are all far smaller;
    plaintexts and offsets are hundreds of digits), nested values,
    oversized names. *)

(** {1 Aggregation} *)

type span_row = { span_name : string; span_count : int; total_s : float }

type round_row = {
  opcode : int;
  round_count : int;
  request_bytes : int;
  reply_bytes : int;
  latency_s : float;
}

type summary = {
  spans : span_row list;  (** by name, alphabetical *)
  rounds : round_row list;  (** by opcode, ascending *)
  total_round_bytes : int;
  total_rounds : int;
  total_latency_s : float;
}

val summarize : entry list -> summary
(** Spans aggregate every [End] record by name; rounds aggregate
    ["channel.round"] points by opcode.  [total_round_bytes] equals
    [Stats.total_bytes] of the traced channel exactly (every
    request/reply pair is recorded with its frame payload sizes). *)

val pp_summary :
  ?opcode_name:(int -> string) -> Format.formatter -> summary -> unit
