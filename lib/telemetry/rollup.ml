(* Windowed aggregation over the cumulative Metrics registry.

   Design: nothing hooks the metric hot paths.  A rollup keeps a ring of
   boundary snapshots — the full cumulative registry captured at slot
   boundaries (default one per minute) — and a window is simply "live
   snapshot minus the boundary N slots back".  The clean-path cost of
   windowed aggregation is therefore zero by construction: counters and
   histograms are updated exactly as before, and all differencing happens
   at exposition time.

   Snapshots are taken opportunistically: [tick] (called by every reader)
   advances the ring when the clock has crossed a slot boundary.  If the
   process is idle across several boundaries the missed slots share one
   snapshot, which correctly attributes zero activity to them.

   The clock is injectable for tests (same pattern as Resume_table and
   Ratelimit); the default is the monotonic clock. *)

type boundary = { b_time : float; b_samples : (string * Metrics.sample) list }

type t = {
  mu : Mutex.t;
  now : unit -> float;
  slot_s : float;
  retain : int;  (* boundaries kept behind the current slot *)
  alpha : float;  (* EWMA smoothing factor *)
  epoch : float;
  mutable current_slot : int;
  boundaries : (int, boundary) Hashtbl.t;
  ewma : (string, float) Hashtbl.t;  (* counter name -> smoothed rate/s *)
}

let create ?now:clock ?(slot_s = 60.0) ?(retain = 16) ?(alpha = 0.3) () =
  let clock = match clock with Some f -> f | None -> Telemetry.now in
  if slot_s <= 0.0 then invalid_arg "Rollup.create: slot_s must be positive";
  if retain < 2 then invalid_arg "Rollup.create: retain must be >= 2";
  if alpha <= 0.0 || alpha > 1.0 then
    invalid_arg "Rollup.create: alpha must be in (0, 1]";
  let epoch = clock () in
  let t =
    {
      mu = Mutex.create ();
      now = clock;
      slot_s;
      retain;
      alpha;
      epoch;
      current_slot = 0;
      boundaries = Hashtbl.create 32;
      ewma = Hashtbl.create 32;
    }
  in
  Hashtbl.replace t.boundaries 0 { b_time = epoch; b_samples = Metrics.snapshot () };
  t

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Counter deltas between two cumulative snapshots, clamped at zero so a
   Metrics.reset between snapshots reads as "no activity", not a huge
   negative window. *)
let counter_deltas newer older =
  let old_tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, s) ->
      match s with
      | Metrics.Counter_sample v -> Hashtbl.replace old_tbl name v
      | _ -> ())
    older;
  List.filter_map
    (fun (name, s) ->
      match s with
      | Metrics.Counter_sample v ->
        let before = Option.value ~default:0 (Hashtbl.find_opt old_tbl name) in
        Some (name, max 0 (v - before))
      | _ -> None)
    newer

let tick_locked t =
  let nowv = t.now () in
  let slot = int_of_float ((nowv -. t.epoch) /. t.slot_s) in
  if slot > t.current_slot then begin
    let snap = Metrics.snapshot () in
    (* EWMA update: the rate observed since the last recorded boundary,
       folded in once per advance. *)
    (match Hashtbl.find_opt t.boundaries t.current_slot with
    | Some prev ->
      let boundary_time = t.epoch +. (float_of_int slot *. t.slot_s) in
      let dt = Float.max (boundary_time -. prev.b_time) 1e-9 in
      List.iter
        (fun (name, delta) ->
          let rate = float_of_int delta /. dt in
          let smoothed =
            match Hashtbl.find_opt t.ewma name with
            | None -> rate
            | Some prev_rate -> (t.alpha *. rate) +. ((1.0 -. t.alpha) *. prev_rate)
          in
          Hashtbl.replace t.ewma name smoothed)
        (counter_deltas snap prev.b_samples)
    | None -> ());
    (* Record the snapshot at every boundary crossed (idle slots share
       it), bounded by the retention horizon. *)
    let first = max (t.current_slot + 1) (slot - t.retain) in
    for i = first to slot do
      Hashtbl.replace t.boundaries i
        { b_time = t.epoch +. (float_of_int i *. t.slot_s); b_samples = snap }
    done;
    t.current_slot <- slot;
    Hashtbl.iter
      (fun i _ -> if i < slot - t.retain then Hashtbl.remove t.boundaries i)
      (Hashtbl.copy t.boundaries)
  end

let tick t = locked t (fun () -> tick_locked t)

type windowed_counter = { wc_name : string; wc_delta : int; wc_rate : float }

type windowed_histogram = {
  wh_name : string;
  wh_count : int;
  wh_sum : float;
  wh_p50 : float;
  wh_p95 : float;
  wh_p99 : float;
}

type window = {
  w_slots : int;
  w_span_s : float;
  w_counters : windowed_counter list;
  w_histograms : windowed_histogram list;
}

(* Linear interpolation inside the winning bucket, Prometheus-style;
   overflow observations clamp to the last finite bound. *)
let quantile (buckets : (float * int) array) ~count q =
  if count <= 0 then 0.0
  else begin
    let target = q *. float_of_int count in
    let n = Array.length buckets in
    let rec go i cum lower =
      if i >= n then if n = 0 then 0.0 else fst buckets.(n - 1)
      else begin
        let b, c = buckets.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then
          lower +. ((b -. lower) *. ((target -. float_of_int cum) /. float_of_int c))
        else go (i + 1) cum' b
      end
    in
    go 0 0 0.0
  end

let histogram_delta (newer : Metrics.histogram_snapshot) older =
  match older with
  | None -> newer
  | Some (o : Metrics.histogram_snapshot) ->
    let buckets =
      Array.mapi
        (fun i (bound, n) ->
          let before = if i < Array.length o.Metrics.buckets then snd o.Metrics.buckets.(i) else 0 in
          (bound, max 0 (n - before)))
        newer.Metrics.buckets
    in
    {
      Metrics.buckets;
      overflow = max 0 (newer.Metrics.overflow - o.Metrics.overflow);
      count = max 0 (newer.Metrics.count - o.Metrics.count);
      sum = Float.max 0.0 (newer.Metrics.sum -. o.Metrics.sum);
    }

let window t ~slots =
  if slots < 1 then invalid_arg "Rollup.window: slots must be >= 1";
  locked t (fun () ->
      tick_locked t;
      let nowv = t.now () in
      let target = max 0 (t.current_slot - slots + 1) in
      let rec find i =
        if i > t.current_slot then None
        else
          match Hashtbl.find_opt t.boundaries i with
          | Some b -> Some b
          | None -> find (i + 1)
      in
      let base =
        match find target with
        | Some b -> b
        | None -> { b_time = t.epoch; b_samples = [] }
      in
      let span = Float.max (nowv -. base.b_time) 1e-9 in
      let live = Metrics.snapshot () in
      let old_tbl = Hashtbl.create 16 in
      List.iter (fun (name, s) -> Hashtbl.replace old_tbl name s) base.b_samples;
      let counters = ref [] and histograms = ref [] in
      List.iter
        (fun (name, s) ->
          match s with
          | Metrics.Counter_sample v ->
            let before =
              match Hashtbl.find_opt old_tbl name with
              | Some (Metrics.Counter_sample b) -> b
              | _ -> 0
            in
            let delta = max 0 (v - before) in
            counters :=
              { wc_name = name; wc_delta = delta; wc_rate = float_of_int delta /. span }
              :: !counters
          | Metrics.Histogram_sample h ->
            let older =
              match Hashtbl.find_opt old_tbl name with
              | Some (Metrics.Histogram_sample o) -> Some o
              | _ -> None
            in
            let d = histogram_delta h older in
            histograms :=
              {
                wh_name = name;
                wh_count = d.Metrics.count;
                wh_sum = d.Metrics.sum;
                wh_p50 = quantile d.Metrics.buckets ~count:d.Metrics.count 0.50;
                wh_p95 = quantile d.Metrics.buckets ~count:d.Metrics.count 0.95;
                wh_p99 = quantile d.Metrics.buckets ~count:d.Metrics.count 0.99;
              }
              :: !histograms
          | Metrics.Gauge_sample _ -> ())
        live;
      {
        w_slots = slots;
        w_span_s = span;
        w_counters = List.rev !counters;
        w_histograms = List.rev !histograms;
      })

let ewma t =
  locked t (fun () ->
      tick_locked t;
      Hashtbl.fold (fun name rate acc -> (name, rate) :: acc) t.ewma []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let slot_seconds t = t.slot_s

(* Same whitespace-tokenized shape as Metrics.dump so stats_text stays
   trivially machine-parsable:
     window 60 counter query.pruned delta 8 rate 0.133333
     window 60 histogram query.stage1.seconds count 3 sum 0.41 p50 ... p95 ... p99 ...
     ewma query.pruned 0.101 *)
let dump_string ?(windows = [ 1; 5; 15 ]) t =
  let b = Buffer.create 1024 in
  List.iter
    (fun slots ->
      let w = window t ~slots in
      let label = int_of_float (float_of_int slots *. t.slot_s) in
      List.iter
        (fun c ->
          Buffer.add_string b
            (Printf.sprintf "window %d counter %s delta %d rate %.6f\n" label
               c.wc_name c.wc_delta c.wc_rate))
        w.w_counters;
      List.iter
        (fun h ->
          Buffer.add_string b
            (Printf.sprintf
               "window %d histogram %s count %d sum %.6f p50 %.6f p95 %.6f p99 %.6f\n"
               label h.wh_name h.wh_count h.wh_sum h.wh_p50 h.wh_p95 h.wh_p99))
        w.w_histograms)
    windows;
  List.iter
    (fun (name, rate) ->
      Buffer.add_string b (Printf.sprintf "ewma %s %.6f\n" name rate))
    (ewma t);
  Buffer.contents b

(* Process-global instance with one-minute slots, created on first use so
   processes that never expose windows pay nothing. *)
let global_mu = Mutex.create ()
let global_ref : t option ref = ref None

let global () =
  Mutex.lock global_mu;
  let t =
    match !global_ref with
    | Some t -> t
    | None ->
      let t = create () in
      global_ref := Some t;
      t
  in
  Mutex.unlock global_mu;
  t
