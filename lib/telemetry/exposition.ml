(* OpenMetrics/Prometheus text exposition of the Metrics registry.

   Metric names are sanitized into the Prometheus grammar (letters,
   digits, underscores) by mapping every other character to '_' and
   prefixing "ppst_".  The registry's closed-vocabulary guarantee carries
   over unchanged: names are static strings from instrumentation sites and
   values are numbers, so the rendered page exposes the same aggregate
   surface as Stats_req, just in a scrapeable shape. *)

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let metric_name name = "ppst_" ^ sanitize name

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let add_family b name kind =
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)

let render_registry b =
  List.iter
    (fun (name, sample) ->
      let pname = metric_name name in
      match sample with
      | Metrics.Counter_sample v ->
        add_family b pname "counter";
        Buffer.add_string b (Printf.sprintf "%s %d\n" pname v)
      | Metrics.Gauge_sample v ->
        add_family b pname "gauge";
        Buffer.add_string b (Printf.sprintf "%s %s\n" pname (fmt_float v))
      | Metrics.Histogram_sample h ->
        add_family b pname "histogram";
        let cum = ref 0 in
        Array.iter
          (fun (bound, n) ->
            cum := !cum + n;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" pname bound !cum))
          h.Metrics.buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname h.Metrics.count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum %s\n" pname (fmt_float h.Metrics.sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname h.Metrics.count))
    (Metrics.snapshot ())

(* Windowed families are rendered as gauges (they can go up and down)
   with a window label, e.g.
     ppst_query_pruned_delta{window="60s"} 8
     ppst_query_stage1_seconds_p99{window="60s"} 0.41 *)
let render_rollup b rollup =
  Rollup.tick rollup;
  let slot = Rollup.slot_seconds rollup in
  let windows = [ 1; 5; 15 ] in
  let emitted = Hashtbl.create 16 in
  let family name =
    if not (Hashtbl.mem emitted name) then begin
      Hashtbl.replace emitted name ();
      add_family b name "gauge"
    end
  in
  List.iter
    (fun slots ->
      let w = Rollup.window rollup ~slots in
      let label = Printf.sprintf "%ds" (int_of_float (float_of_int slots *. slot)) in
      List.iter
        (fun (c : Rollup.windowed_counter) ->
          let base = metric_name c.Rollup.wc_name in
          family (base ^ "_delta");
          Buffer.add_string b
            (Printf.sprintf "%s_delta{window=%S} %d\n" base label c.Rollup.wc_delta);
          family (base ^ "_rate");
          Buffer.add_string b
            (Printf.sprintf "%s_rate{window=%S} %s\n" base label
               (fmt_float c.Rollup.wc_rate)))
        w.Rollup.w_counters;
      List.iter
        (fun (h : Rollup.windowed_histogram) ->
          let base = metric_name h.Rollup.wh_name in
          List.iter
            (fun (suffix, v) ->
              family (base ^ suffix);
              Buffer.add_string b
                (Printf.sprintf "%s%s{window=%S} %s\n" base suffix label
                   (fmt_float v)))
            [
              ("_window_count", float_of_int h.Rollup.wh_count);
              ("_p50", h.Rollup.wh_p50);
              ("_p95", h.Rollup.wh_p95);
              ("_p99", h.Rollup.wh_p99);
            ])
        w.Rollup.w_histograms)
    windows;
  List.iter
    (fun (name, rate) ->
      let base = metric_name name in
      family (base ^ "_ewma");
      Buffer.add_string b (Printf.sprintf "%s_ewma %s\n" base (fmt_float rate)))
    (Rollup.ewma rollup)

let render ?rollup () =
  let b = Buffer.create 4096 in
  render_registry b;
  (match rollup with None -> () | Some r -> render_rollup b r);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
