(** Windowed aggregation over the cumulative {!Metrics} registry.

    A rollup keeps a ring of boundary snapshots (one per slot, default one
    minute) and answers "last N slots" queries as the delta between the
    live registry and the boundary N slots back.  Nothing hooks the metric
    update paths, so the clean-path overhead of windowed aggregation is
    zero by construction; all differencing happens at exposition time.

    Snapshots advance opportunistically: every reader calls {!tick}
    (directly or via {!window}/{!ewma}/{!dump_string}), which captures a
    boundary when the clock has crossed into a new slot.  The clock is
    injectable for deterministic tests. *)

type t

val create :
  ?now:(unit -> float) ->
  ?slot_s:float ->
  ?retain:int ->
  ?alpha:float ->
  unit ->
  t
(** [create ()] starts a rollup anchored at the current clock value.
    [slot_s] is the slot width in seconds (default 60), [retain] how many
    past boundaries are kept (default 16, enough for a 15-minute window),
    [alpha] the EWMA smoothing factor in (0, 1] (default 0.3).
    @raise Invalid_argument on non-positive [slot_s], [retain] < 2 or
    [alpha] outside (0, 1]. *)

val tick : t -> unit
(** Advance the ring if the clock crossed a slot boundary; otherwise a
    cheap no-op.  Safe from any thread. *)

type windowed_counter = {
  wc_name : string;
  wc_delta : int;  (** increase over the window *)
  wc_rate : float;  (** [wc_delta] per second of actual span *)
}

type windowed_histogram = {
  wh_name : string;
  wh_count : int;
  wh_sum : float;
  wh_p50 : float;
  wh_p95 : float;
  wh_p99 : float;
      (** quantiles interpolated from bucket-count deltas; observations
          past the last finite bound clamp to that bound *)
}

type window = {
  w_slots : int;
  w_span_s : float;  (** actual seconds covered (partial current slot included) *)
  w_counters : windowed_counter list;  (** sorted by name *)
  w_histograms : windowed_histogram list;  (** sorted by name *)
}

val window : t -> slots:int -> window
(** Activity over the last [slots] slots (including the partial current
    one).  With less history than requested, covers what exists.
    @raise Invalid_argument if [slots] < 1. *)

val ewma : t -> (string * float) list
(** Exponentially-smoothed per-second rate of every counter, updated at
    each slot advance; sorted by name. *)

val slot_seconds : t -> float

val dump_string : ?windows:int list -> t -> string
(** Whitespace-tokenized text in the same style as {!Metrics.dump}:
    [window SECONDS counter NAME delta D rate R],
    [window SECONDS histogram NAME count N sum S p50 A p95 B p99 C] and
    [ewma NAME RATE] lines.  [windows] are slot counts (default
    [\[1; 5; 15\]] — last 1/5/15 minutes at the default slot width). *)

val global : unit -> t
(** Lazily-created process-wide rollup with one-minute slots, used by the
    server stats text and the metrics endpoint. *)
