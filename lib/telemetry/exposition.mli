(** OpenMetrics/Prometheus text rendering of the {!Metrics} registry.

    Every counter, gauge and histogram is rendered under a sanitized
    [ppst_]-prefixed name ([.] and other non-grammar characters become
    [_]), histograms with cumulative [le] buckets plus [_sum]/[_count].
    When a {!Rollup} is supplied, windowed deltas/rates and interpolated
    p50/p95/p99 are rendered as labelled gauges
    ([..._delta{window="60s"}], [..._p99{window="300s"}], [..._ewma]).

    The page exposes the same aggregate-only surface as [Stats_req]: names
    come from the closed instrumentation vocabulary and values are
    numbers, so no per-session or data-dependent strings can appear. *)

val metric_name : string -> string
(** Registry name to exposition name: sanitize + ["ppst_"] prefix. *)

val render : ?rollup:Rollup.t -> unit -> string
(** Render the full page, terminated by [# EOF].  [rollup] is ticked
    before rendering. *)
