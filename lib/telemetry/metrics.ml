(* Process-wide registry of named counters, gauges and fixed-bucket
   histograms.  Thread-safety under Domains comes from one mutex per
   metric (update hot paths never contend on a global lock); the registry
   itself is guarded by [reg_mu] only during get-or-create and dump.

   The same leakage discipline as Telemetry applies: a metric can only
   carry numbers, and its name is a static string chosen at the
   instrumentation site. *)

type counter = { c_mu : Mutex.t; mutable c_value : int }
type gauge = { g_mu : Mutex.t; mutable g_value : float }

type histogram = {
  h_mu : Mutex.t;
  bounds : float array;  (* ascending upper bucket bounds; +inf implicit *)
  counts : int array;  (* length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_mu = Mutex.create ()

let locked f =
  Mutex.lock reg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mu) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let get_or_create name make match_existing =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> begin
        match match_existing existing with
        | Some m -> m
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name existing))
      end
      | None ->
        let m = make () in
        m)

let counter name =
  get_or_create name
    (fun () ->
      let c = { c_mu = Mutex.create (); c_value = 0 } in
      Hashtbl.add registry name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c =
  Mutex.lock c.c_mu;
  c.c_value <- c.c_value + by;
  Mutex.unlock c.c_mu

let counter_value c =
  Mutex.lock c.c_mu;
  let v = c.c_value in
  Mutex.unlock c.c_mu;
  v

let gauge name =
  get_or_create name
    (fun () ->
      let g = { g_mu = Mutex.create (); g_value = 0.0 } in
      Hashtbl.add registry name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)

let gauge_set g v =
  Mutex.lock g.g_mu;
  g.g_value <- v;
  Mutex.unlock g.g_mu

let gauge_add g v =
  Mutex.lock g.g_mu;
  g.g_value <- g.g_value +. v;
  Mutex.unlock g.g_mu

let gauge_value g =
  Mutex.lock g.g_mu;
  let v = g.g_value in
  Mutex.unlock g.g_mu;
  v

let default_buckets = [| 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let histogram ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bucket bounds must be ascending")
    buckets;
  get_or_create name
    (fun () ->
      let h =
        {
          h_mu = Mutex.create ();
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          h_count = 0;
          h_sum = 0.0;
        }
      in
      Hashtbl.add registry name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)

(* First bucket whose bound is >= v ("less than or equal" semantics, as
   in Prometheus [le] buckets); past the last bound, the overflow slot. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  Mutex.lock h.h_mu;
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  Mutex.unlock h.h_mu

type histogram_snapshot = {
  buckets : (float * int) array;  (* (upper bound, count in bucket) *)
  overflow : int;
  count : int;
  sum : float;
}

let histogram_snapshot h =
  Mutex.lock h.h_mu;
  let snap =
    {
      buckets = Array.mapi (fun i b -> (b, h.counts.(i))) h.bounds;
      overflow = h.counts.(Array.length h.bounds);
      count = h.h_count;
      sum = h.h_sum;
    }
  in
  Mutex.unlock h.h_mu;
  snap

(* --- introspection -------------------------------------------------------- *)

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of histogram_snapshot

let snapshot () =
  let items =
    locked (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  let items = List.sort (fun (a, _) (b, _) -> String.compare a b) items in
  List.map
    (fun (name, m) ->
      let s =
        match m with
        | Counter c -> Counter_sample (counter_value c)
        | Gauge g -> Gauge_sample (gauge_value g)
        | Histogram h -> Histogram_sample (histogram_snapshot h)
      in
      (name, s))
    items

(* --- exposition ----------------------------------------------------------- *)

(* One line per metric, sorted by name, whitespace-tokenized so the text
   is trivially machine-parsable:
     counter transport.rounds 35
     gauge server.sessions.active 2
     histogram pool.batch.items count 4 sum 60 le 1 0 le 8 2 ... inf 0 *)
let dump fmt =
  let items =
    locked (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  let items = List.sort (fun (a, _) (b, _) -> String.compare a b) items in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Format.fprintf fmt "counter %s %d@." name (counter_value c)
      | Gauge g -> Format.fprintf fmt "gauge %s %.6f@." name (gauge_value g)
      | Histogram h ->
        let s = histogram_snapshot h in
        Format.fprintf fmt "histogram %s count %d sum %.6f" name s.count s.sum;
        Array.iter (fun (b, n) -> Format.fprintf fmt " le %g %d" b n) s.buckets;
        Format.fprintf fmt " inf %d@." s.overflow)
    items

let dump_string () =
  let b = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer b in
  dump fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents b

let reset () =
  let items = locked (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  List.iter
    (function
      | Counter c ->
        Mutex.lock c.c_mu;
        c.c_value <- 0;
        Mutex.unlock c.c_mu
      | Gauge g ->
        Mutex.lock g.g_mu;
        g.g_value <- 0.0;
        Mutex.unlock g.g_mu
      | Histogram h ->
        Mutex.lock h.h_mu;
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.h_count <- 0;
        h.h_sum <- 0.0;
        Mutex.unlock h.h_mu)
    items
