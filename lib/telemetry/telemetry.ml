(* Structured spans and events with leakage-safe attributes.

   Leakage safety is enforced by construction: attribute values are a
   closed variant of small public quantities (counts, byte sizes, wire
   opcodes, durations, phase tags, booleans).  There is no string or
   bigint constructor, so plaintexts, masking offsets, and ciphertext
   bytes cannot reach a sink no matter what an instrumentation site does.
   The only strings in an emitted record are the static, code-chosen
   span/attribute names and the four-member phase enum (see SECURITY.md,
   "Telemetry leakage safety").

   Determinism: nothing here draws from Secure_rng or influences protocol
   state — emission only reads a monotonic clock, so a seeded transcript
   is bit-identical whether telemetry is enabled or not (asserted in
   test_parallel.ml). *)

type level = Quiet | Info | Debug

let level_rank = function Quiet -> 0 | Info -> 1 | Debug -> 2

let level_name = function Quiet -> "quiet" | Info -> "info" | Debug -> "debug"

let level_of_string = function
  | "quiet" -> Quiet
  | "info" -> Info
  | "debug" -> Debug
  | s -> invalid_arg ("Telemetry.level_of_string: " ^ s)

type phase = Phase1 | Phase2 | Phase3 | Offline

let phase_name = function
  | Phase1 -> "phase1"
  | Phase2 -> "phase2"
  | Phase3 -> "phase3"
  | Offline -> "offline"

type value =
  | Int of int
  | Size of int
  | Duration of float
  | Opcode of int
  | Phase of phase
  | Flag of bool

type attr = string * value

type event =
  | Span_start of { id : int; name : string; t : float; attrs : attr list }
  | Span_end of { id : int; name : string; t : float; dt : float; attrs : attr list }
  | Point of { name : string; t : float; attrs : attr list }

(* Monotonic seconds (same clock as Ppst_transport.Monoclock); never
   affects protocol bytes, only timestamps in emitted records. *)
let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* --- rendering ------------------------------------------------------------ *)

let value_to_json = function
  | Int i | Size i | Opcode i -> string_of_int i
  | Duration s -> Printf.sprintf "%.9f" s
  | Phase p -> Printf.sprintf "%S" (phase_name p)
  | Flag b -> if b then "true" else "false"

let attrs_to_json attrs =
  match attrs with
  | [] -> "{}"
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k (value_to_json v)) attrs)
    ^ "}"

let event_to_json = function
  | Span_start { id; name; t; attrs } ->
    Printf.sprintf {|{"ev":"start","id":%d,"name":%S,"t":%.9f,"attrs":%s}|} id name t
      (attrs_to_json attrs)
  | Span_end { id; name; t; dt; attrs } ->
    Printf.sprintf {|{"ev":"end","id":%d,"name":%S,"t":%.9f,"dt":%.9f,"attrs":%s}|}
      id name t dt (attrs_to_json attrs)
  | Point { name; t; attrs } ->
    Printf.sprintf {|{"ev":"point","name":%S,"t":%.9f,"attrs":%s}|} name t
      (attrs_to_json attrs)

let value_pretty = function
  | Int i -> string_of_int i
  | Size s -> Printf.sprintf "%dB" s
  | Duration s -> Printf.sprintf "%.6fs" s
  | Opcode o -> Printf.sprintf "0x%02x" o
  | Phase p -> phase_name p
  | Flag b -> string_of_bool b

let attrs_pretty attrs =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (value_pretty v)) attrs)

let event_pretty = function
  | Span_start { id; name; attrs; _ } ->
    Printf.sprintf "[telemetry] > %s #%d%s" name id (attrs_pretty attrs)
  | Span_end { id; name; dt; attrs; _ } ->
    Printf.sprintf "[telemetry] < %s #%d dt=%.6fs%s" name id dt (attrs_pretty attrs)
  | Point { name; attrs; _ } ->
    Printf.sprintf "[telemetry] . %s%s" name (attrs_pretty attrs)

(* --- sinks ---------------------------------------------------------------- *)

type sink = { emit : event -> unit; flush : unit -> unit }

let null_sink = { emit = (fun _ -> ()); flush = (fun () -> ()) }

(* Each record is flushed as one write: a SIGKILLed process loses at
   most the line being written (which Trace_reader.read_file_partial
   already tolerates), never a buffered tail of complete spans. *)
let jsonl_sink oc =
  {
    emit =
      (fun ev ->
        output_string oc (event_to_json ev);
        output_char oc '\n';
        flush oc);
    flush = (fun () -> flush oc);
  }

let pretty_sink oc =
  {
    emit =
      (fun ev ->
        output_string oc (event_pretty ev);
        output_char oc '\n');
    flush = (fun () -> flush oc);
  }

(* Registered sinks, each with its own level threshold.  [max_level]
   caches the most verbose threshold so disabled instrumentation sites
   cost one atomic load and an integer compare. *)
let sinks : (level * sink) list Atomic.t = Atomic.make []
let max_level = Atomic.make Quiet
let emit_mu = Mutex.create ()

let recompute_max () =
  let m =
    List.fold_left
      (fun acc (l, _) -> if level_rank l > level_rank acc then l else acc)
      Quiet (Atomic.get sinks)
  in
  Atomic.set max_level m

let clear_sinks () =
  let old = Atomic.get sinks in
  Atomic.set sinks [];
  Atomic.set max_level Quiet;
  List.iter (fun (_, s) -> try s.flush () with _ -> ()) old

let add_sink ?(level = Info) sink =
  Atomic.set sinks ((level, sink) :: Atomic.get sinks);
  recompute_max ()

let flush () = List.iter (fun (_, s) -> s.flush ()) (Atomic.get sinks)

let enabled level = level_rank level <= level_rank (Atomic.get max_level)

let emit level ev =
  Mutex.lock emit_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock emit_mu)
    (fun () ->
      List.iter
        (fun (threshold, s) ->
          if level_rank level <= level_rank threshold then s.emit ev)
        (Atomic.get sinks))

(* --- spans and events ----------------------------------------------------- *)

let next_id = Atomic.make 1

type span_handle = { id : int; name : string; t0 : float; span_level : level; live : bool }

let start ?(level = Info) ~name ?(attrs = []) () =
  if enabled level then begin
    let id = Atomic.fetch_and_add next_id 1 in
    let t0 = now () in
    emit level (Span_start { id; name; t = t0; attrs });
    { id; name; t0; span_level = level; live = true }
  end
  else { id = 0; name; t0 = 0.0; span_level = level; live = false }

let finish ?(attrs = []) h =
  if h.live then begin
    let t = now () in
    emit h.span_level (Span_end { id = h.id; name = h.name; t; dt = t -. h.t0; attrs })
  end

let span ?level ~name ?attrs f =
  let h = start ?level ~name ?attrs () in
  match f () with
  | v ->
    finish h;
    v
  | exception e ->
    finish ~attrs:[ ("error", Flag true) ] h;
    raise e

let event ?(level = Info) ~name ?(attrs = []) () =
  if enabled level then emit level (Point { name; t = now (); attrs })

(* --- CLI convenience ------------------------------------------------------ *)

(* Shared flag plumbing for ppst_server / ppst_client / bench: [level]
   gates a human-readable (or, with [json], JSONL) stderr sink; a
   [trace_out] file always records at Debug so a trace is complete even
   under --log-level quiet. *)
let configure ?(level = "quiet") ?(json = false) ?trace_out () =
  clear_sinks ();
  let stderr_level = level_of_string level in
  if stderr_level <> Quiet then
    add_sink ~level:stderr_level
      (if json then jsonl_sink stderr else pretty_sink stderr);
  match trace_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    add_sink ~level:Debug (jsonl_sink oc);
    at_exit (fun () ->
        flush ();
        try close_out oc with Sys_error _ -> ())
