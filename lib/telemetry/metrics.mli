(** Process-wide metrics registry: named counters, gauges and
    fixed-bucket histograms, thread-safe under Domains (one mutex per
    metric).  Metric names are static strings chosen at instrumentation
    sites; values are numbers only — the same leakage discipline as
    {!Telemetry} attributes. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get-or-create.  @raise Invalid_argument if [name] is already
    registered as a different kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val gauge_set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?buckets:float array -> string -> histogram
(** [buckets] are ascending upper bounds ("le" semantics); an implicit
    overflow bucket catches everything beyond the last bound.  The bounds
    of an already-registered histogram are kept. *)

val observe : histogram -> float -> unit

type histogram_snapshot = {
  buckets : (float * int) array;  (** (upper bound, count in bucket) *)
  overflow : int;
  count : int;
  sum : float;
}

val histogram_snapshot : histogram -> histogram_snapshot

type sample =
  | Counter_sample of int
  | Gauge_sample of float
  | Histogram_sample of histogram_snapshot

val snapshot : unit -> (string * sample) list
(** Cumulative values of every registered metric, sorted by name.  The
    basis for {!Rollup} windowed deltas and {!Exposition} rendering. *)

val dump : Format.formatter -> unit
(** Text exposition: one whitespace-tokenized line per metric, sorted by
    name ([counter NAME V] / [gauge NAME V] / [histogram NAME count N sum
    S le B N ... inf N]).  Served over the wire by [Stats_reply]. *)

val dump_string : unit -> string

val reset : unit -> unit
(** Zero every registered metric (registrations survive).  For tests. *)
