(** Structured spans/events with leakage-safe attributes.

    Instrumentation sites call {!span} / {!event}; records flow to zero
    or more registered sinks (null, pretty stderr, JSONL file), each with
    its own verbosity threshold.  With no sinks registered every call is
    a single atomic load — the protocol pays (almost) nothing when
    observability is off.

    {b Leakage safety (see SECURITY.md).}  Attribute values are the
    closed variant {!value}: counts, byte sizes, durations, wire opcodes,
    phase tags, booleans.  No constructor accepts a string or a bigint,
    so plaintexts, masking offsets and ciphertext bytes cannot be logged
    by construction.

    {b Determinism.}  Telemetry never draws from [Secure_rng] and never
    touches protocol state; seeded transcripts are bit-identical with
    sinks on or off (asserted in [test/test_parallel.ml]). *)

type level = Quiet | Info | Debug

val level_rank : level -> int
val level_name : level -> string

val level_of_string : string -> level
(** ["quiet" | "info" | "debug"]; @raise Invalid_argument otherwise. *)

type phase = Phase1 | Phase2 | Phase3 | Offline

val phase_name : phase -> string

(** The only payloads an attribute can carry. *)
type value =
  | Int of int  (** counts, indices, ids *)
  | Size of int  (** byte sizes *)
  | Duration of float  (** seconds *)
  | Opcode of int  (** wire tags, [0x00]..[0xFF] *)
  | Phase of phase
  | Flag of bool

type attr = string * value

type event =
  | Span_start of { id : int; name : string; t : float; attrs : attr list }
  | Span_end of { id : int; name : string; t : float; dt : float; attrs : attr list }
  | Point of { name : string; t : float; attrs : attr list }

val now : unit -> float
(** Monotonic seconds (same clock family as [Ppst_transport.Monoclock]). *)

val event_to_json : event -> string
(** One JSONL line, no trailing newline ([Trace_reader] parses it back). *)

val event_pretty : event -> string

(** {1 Sinks} *)

type sink = { emit : event -> unit; flush : unit -> unit }

val null_sink : sink
val jsonl_sink : out_channel -> sink
val pretty_sink : out_channel -> sink

val add_sink : ?level:level -> sink -> unit
(** Register a sink receiving events at or below [level] (default
    [Info]). *)

val clear_sinks : unit -> unit
(** Unregister (and flush) every sink. *)

val flush : unit -> unit

val enabled : level -> bool
(** [true] iff some registered sink would receive an event at [level]. *)

(** {1 Spans and events} *)

type span_handle

val start : ?level:level -> name:string -> ?attrs:attr list -> unit -> span_handle
val finish : ?attrs:attr list -> span_handle -> unit
(** End-of-span attributes (e.g. an outcome only known at the end) are
    appended to the [Span_end] record. *)

val span : ?level:level -> name:string -> ?attrs:attr list -> (unit -> 'a) -> 'a
(** [span ~name ~attrs f] emits start/end records around [f] (an
    escaping exception ends the span with [("error", Flag true)] and
    re-raises). *)

val event : ?level:level -> name:string -> ?attrs:attr list -> unit -> unit

(** {1 CLI convenience} *)

val configure : ?level:string -> ?json:bool -> ?trace_out:string -> unit -> unit
(** Shared [--log-level] / [--log-json] / [--trace-out] plumbing for the
    binaries: resets sinks, then registers a stderr sink (pretty, or
    JSONL with [json]) gated at [level] (default ["quiet"] = none), and a
    Debug-level JSONL sink on the [trace_out] file (closed at exit).
    @raise Invalid_argument on an unknown level name.
    @raise Sys_error when [trace_out] cannot be opened. *)
