(** Montgomery modular multiplication and exponentiation (CIOS) for odd
    moduli, operating on raw {!Nat} limb vectors.  Most callers should use
    the {!Modular} wrappers; this interface exists for the few hot paths
    that want to stay at the limb level. *)

type ctx

exception Even_modulus

val create : Nat.t -> ctx
(** Precompute constants for an odd modulus.
    @raise Even_modulus if the modulus is even or zero. *)

val pow_mod : ctx -> Nat.t -> Nat.t -> Nat.t
(** [pow_mod ctx b e] = [b^e mod n] for [b < n] (reduced). *)

val mul_mod : ctx -> Nat.t -> Nat.t -> Nat.t
(** [mul_mod ctx a b] = [a*b mod n] for reduced [a], [b]. *)

val to_mont : ctx -> Nat.t -> int array
val of_mont : ctx -> int array -> Nat.t
val mont_mul_raw : ctx -> int array -> int array -> int array

val one_raw : ctx -> int array
(** Montgomery form of 1 ([R mod n]), padded to the context width. *)

val pow_raw : ctx -> int array -> Nat.t -> int array
(** [pow_raw ctx x e] with [x] in Montgomery form returns [x^e] in
    Montgomery form (sliding-window ladder).  [e = 0] yields
    {!one_raw}. *)
