(* Montgomery modular multiplication (CIOS variant, Koç et al.) for odd
   moduli, on raw Nat limb vectors.  This is the workhorse of Paillier:
   every encryption/decryption is a modular exponentiation mod n or n^2.

   A context fixes the modulus n (s limbs) and R = B^s with B = 2^31.
   Values are kept in Montgomery form aR mod n; mont_mul computes
   (aR)(bR)R^-1 = abR, i.e. multiplication stays in form. *)

type ctx = {
  modulus : Nat.t;      (* odd modulus, s limbs, normalized *)
  s : int;              (* limb count of the modulus *)
  n0_inv : int;         (* -modulus^{-1} mod B *)
  r_mod : Nat.t;        (* R mod n: Montgomery form of 1 *)
  r2_mod : Nat.t;       (* R^2 mod n: converts to Montgomery form *)
}

exception Even_modulus

(* Inverse of the odd limb n0 modulo 2^31 by Newton iteration:
   x <- x (2 - n0 x) doubles the number of correct low bits. *)
let limb_inverse n0 =
  let mask = Nat.base_mask in
  let x = ref n0 in
  for _ = 1 to 5 do
    x := !x * (2 - (n0 * !x)) land mask land mask
  done;
  !x land mask

let create (modulus : Nat.t) : ctx =
  if Nat.is_zero modulus || not (Nat.testbit modulus 0) then raise Even_modulus;
  let s = Array.length modulus in
  let n0_inv = Nat.base - limb_inverse modulus.(0) in
  let r = Nat.shift_left Nat.one (s * Nat.base_bits) in
  let r_mod = snd (Nat.divmod r modulus) in
  let r2 = Nat.mul r_mod r_mod in
  let r2_mod = snd (Nat.divmod r2 modulus) in
  { modulus; s; n0_inv; r_mod; r2_mod }

(* Pad a normalized Nat (< modulus) to exactly s limbs. *)
let pad ctx (a : Nat.t) : int array =
  let r = Array.make ctx.s 0 in
  Array.blit a 0 r 0 (Array.length a);
  r

(* CIOS Montgomery multiplication on s-limb padded arrays.
   Writes ab R^-1 mod n into a fresh s-limb array.

   The inner loops use unsafe accesses: every index is bounded by [s]
   (for [a], [b], [n]) or [s + 2] (for [t]) by construction, and this
   routine sits under every exponentiation in the system, so the bounds
   checks are pure overhead. *)
let mont_mul_raw ctx (a : int array) (b : int array) : int array =
  let s = ctx.s in
  let n = ctx.modulus in
  let mask = Nat.base_mask and bits = Nat.base_bits in
  let t = Array.make (s + 2) 0 in
  for i = 0 to s - 1 do
    let bi = Array.unsafe_get b i in
    (* t += a * b_i *)
    let carry = ref 0 in
    for j = 0 to s - 1 do
      let x = Array.unsafe_get t j + (Array.unsafe_get a j * bi) + !carry in
      Array.unsafe_set t j (x land mask);
      carry := x lsr bits
    done;
    let x = Array.unsafe_get t s + !carry in
    Array.unsafe_set t s (x land mask);
    Array.unsafe_set t (s + 1) (x lsr bits);
    (* m = t0 * n0_inv mod B; t += m * n; t >>= one limb *)
    let m = (Array.unsafe_get t 0 * ctx.n0_inv) land mask in
    let x0 = Array.unsafe_get t 0 + (m * Array.unsafe_get n 0) in
    let carry = ref (x0 lsr bits) in
    for j = 1 to s - 1 do
      let x = Array.unsafe_get t j + (m * Array.unsafe_get n j) + !carry in
      Array.unsafe_set t (j - 1) (x land mask);
      carry := x lsr bits
    done;
    let x = Array.unsafe_get t s + !carry in
    Array.unsafe_set t (s - 1) (x land mask);
    Array.unsafe_set t s (Array.unsafe_get t (s + 1) + (x lsr bits));
    Array.unsafe_set t (s + 1) 0
  done;
  let result = Array.sub t 0 s in
  (* Conditional final subtraction: result may be in [n, 2n). *)
  let ge =
    if t.(s) <> 0 then true
    else begin
      let rec cmp i =
        if i < 0 then true (* equal counts as >= *)
        else if result.(i) <> n.(i) then result.(i) > n.(i)
        else cmp (i - 1)
      in
      cmp (s - 1)
    end
  in
  if ge then begin
    let borrow = ref 0 in
    for i = 0 to s - 1 do
      let d = result.(i) - n.(i) - !borrow in
      if d < 0 then begin
        result.(i) <- d + Nat.base;
        borrow := 1
      end
      else begin
        result.(i) <- d;
        borrow := 0
      end
    done
  end;
  result

let to_mont ctx (a : Nat.t) : int array =
  mont_mul_raw ctx (pad ctx a) (pad ctx ctx.r2_mod)

let of_mont ctx (a : int array) : Nat.t =
  let one_padded = pad ctx Nat.one in
  Nat.normalize (mont_mul_raw ctx a one_padded)

let one_raw ctx : int array = pad ctx ctx.r_mod

(* Sliding-window exponentiation in Montgomery form: [x] is in form,
   the result is in form.  Window width 4 precomputes the 8 odd powers
   x, x^3, ..., x^15 and then scans the exponent from the top, emitting
   one table multiplication per odd window instead of one per set bit.
   For a 1024/2048-bit exponent this trades ~n/2 multiplications for
   ~n/5 plus 8 precomputation squarings/multiplications.

   The result is the same mathematical value the plain binary ladder
   produced, so callers observe byte-identical outputs. *)
let window_bits = 4

let pow_raw ctx (x : int array) (exponent : Nat.t) : int array =
  let nbits = Nat.num_bits exponent in
  if nbits = 0 then one_raw ctx
  else if nbits <= window_bits then begin
    (* Tiny exponent: the table would cost more than the ladder. *)
    let acc = ref (one_raw ctx) in
    for i = nbits - 1 downto 0 do
      acc := mont_mul_raw ctx !acc !acc;
      if Nat.testbit exponent i then acc := mont_mul_raw ctx !acc x
    done;
    !acc
  end
  else begin
    (* odd.(k) = x^(2k+1) in Montgomery form. *)
    let table_size = 1 lsl (window_bits - 1) in
    let x2 = mont_mul_raw ctx x x in
    let odd = Array.make table_size x in
    for k = 1 to table_size - 1 do
      odd.(k) <- mont_mul_raw ctx odd.(k - 1) x2
    done;
    let acc = ref (one_raw ctx) in
    let i = ref (nbits - 1) in
    while !i >= 0 do
      if not (Nat.testbit exponent !i) then begin
        acc := mont_mul_raw ctx !acc !acc;
        decr i
      end
      else begin
        (* Take the widest window [i .. j] that fits and ends on a set
           bit, so its value is odd and lives in the table. *)
        let j = ref (max 0 (!i - window_bits + 1)) in
        while not (Nat.testbit exponent !j) do incr j done;
        let width = !i - !j + 1 in
        let value = ref 0 in
        for b = !i downto !j do
          value := (!value lsl 1) lor (if Nat.testbit exponent b then 1 else 0)
        done;
        for _ = 1 to width do
          acc := mont_mul_raw ctx !acc !acc
        done;
        acc := mont_mul_raw ctx !acc odd.(!value lsr 1);
        i := !j - 1
      end
    done;
    !acc
  end

(* [base_nat] must already be reduced mod the modulus. *)
let pow_mod ctx (base_nat : Nat.t) (exponent : Nat.t) : Nat.t =
  if Nat.is_zero exponent then snd (Nat.divmod Nat.one ctx.modulus)
  else Nat.normalize (of_mont ctx (pow_raw ctx (to_mont ctx base_nat) exponent))

(* Modular multiplication through Montgomery form (for callers that only
   need a few products; exponentiation uses the in-form loop above). *)
let mul_mod ctx (a : Nat.t) (b : Nat.t) : Nat.t =
  let am = to_mont ctx a and bm = to_mont ctx b in
  of_mont ctx (mont_mul_raw ctx am bm)
