(* Fixed-base windowed exponentiation (Brickell–Gordon–McCurley–Wilson).

   When one base is raised to many different exponents under the same
   modulus — Paillier noise generators, subgroup generators — it pays to
   precompute, once, the table

     tbl.(j).(i-1) = base^(i * 2^(j*w))  in Montgomery form

   for window width w, digit values i in 1..2^w-1 and digit positions
   j covering [max_bits] exponent bits.  An exponentiation then splits
   the exponent into base-2^w digits and multiplies one table entry per
   nonzero digit: ~ceil(bits/w) Montgomery multiplications and NO
   squarings, versus ~1.2*bits for a generic ladder.

   The table costs (2^w - 1) * ceil(bits/w) entries; w = 4 over 1088
   bits is ~4080 entries of s limbs (~2 MB at s = 66) built with one
   multiplication each.  Tables are immutable after [create] and safe
   to share across Domains. *)

type t = {
  mont : Montgomery.ctx;
  window : int;                 (* digit width w in bits *)
  digits : int;                 (* number of digit positions *)
  table : int array array array;(* table.(j).(i-1) = base^(i * 2^(jw)), mont form *)
}

let default_window = 4

let create ?(window = default_window) (ctx : Modular.ctx) ~max_bits (base : Bigint.t) : t =
  if window < 1 || window > 8 then invalid_arg "Fixed_base.create: window";
  if max_bits < 1 then invalid_arg "Fixed_base.create: max_bits";
  let mont = Modular.mont_of_ctx ctx in
  let digits = (max_bits + window - 1) / window in
  let per_digit = (1 lsl window) - 1 in
  let b = Modular.to_mont_ctx ctx base in
  let table = Array.make digits [||] in
  (* Row j is built from row j-1's top entry: base^(2^((j+1)w)) =
     (base^(2^(jw)))^(2^w), obtained by w squarings of the row head. *)
  let head = ref b in
  for j = 0 to digits - 1 do
    let row = Array.make per_digit !head in
    for i = 1 to per_digit - 1 do
      row.(i) <- Montgomery.mont_mul_raw mont row.(i - 1) !head
    done;
    table.(j) <- row;
    if j < digits - 1 then begin
      let h = ref !head in
      for _ = 1 to window do
        h := Montgomery.mont_mul_raw mont !h !h
      done;
      head := !h
    end
  done;
  { mont; window; digits; table }

let max_bits t = t.digits * t.window

(* [exponent] must fit in [max_bits t] bits. *)
let pow_raw (t : t) (exponent : Bigint.t) : int array =
  if Bigint.is_negative exponent then
    invalid_arg "Fixed_base.pow_raw: negative exponent";
  let e = Bigint.magnitude exponent in
  let nbits = Nat.num_bits e in
  if nbits > t.digits * t.window then
    invalid_arg "Fixed_base.pow_raw: exponent exceeds table size";
  let acc = ref (Montgomery.one_raw t.mont) in
  let used = (nbits + t.window - 1) / t.window in
  for j = 0 to used - 1 do
    let d = ref 0 in
    for b = t.window - 1 downto 0 do
      let bit = (j * t.window) + b in
      d := (!d lsl 1) lor (if bit < nbits && Nat.testbit e bit then 1 else 0)
    done;
    if !d <> 0 then acc := Montgomery.mont_mul_raw t.mont !acc t.table.(j).(!d - 1)
  done;
  !acc

let pow (ctx : Modular.ctx) (t : t) (exponent : Bigint.t) : Bigint.t =
  Modular.of_mont_ctx ctx (pow_raw t exponent)
