(** Modular arithmetic over {!Bigint}: reduction, inverses, GCD and fast
    exponentiation (Montgomery-backed for odd moduli). *)

exception Not_invertible
(** Raised by {!invert} when the element shares a factor with the
    modulus. *)

val reduce : Bigint.t -> Bigint.t -> Bigint.t
(** Canonical residue in [\[0, m)]. *)

val add : Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t
val sub : Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t
val mul : Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t
(** [add a b m], [sub a b m], [mul a b m] — all reduced into [\[0, m)]. *)

val gcd : Bigint.t -> Bigint.t -> Bigint.t
val lcm : Bigint.t -> Bigint.t -> Bigint.t

val egcd : Bigint.t -> Bigint.t -> Bigint.t * Bigint.t * Bigint.t
(** [egcd a b = (g, u, v)] with [u*a + v*b = g = gcd a b]. *)

val invert : Bigint.t -> Bigint.t -> Bigint.t
(** Modular inverse in [\[0, m)].
    @raise Not_invertible when [gcd a m <> 1]. *)

val pow_mod : ?ctx:Montgomery.ctx -> Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t
(** [pow_mod b e m] = [b^e mod m], [e >= 0].  Uses Montgomery
    exponentiation when [m] is odd (pass [?ctx] to reuse a context),
    naive square-and-multiply otherwise. *)

val pow_mod_naive : Bigint.t -> Bigint.t -> Bigint.t -> Bigint.t
(** Reference square-and-multiply with a full division per step — the
    even-modulus fallback of {!pow_mod}, exposed so differential tests
    can pit the Montgomery path against it.  [e >= 0]; [m >= 1]. *)

(** {1 Fixed-modulus contexts}

    Precompute Montgomery constants once for a long-lived odd modulus. *)

type ctx

val make_ctx : Bigint.t -> ctx
(** @raise Invalid_argument on even or non-positive modulus. *)

val ctx_modulus : ctx -> Bigint.t
val pow_ctx : ctx -> Bigint.t -> Bigint.t -> Bigint.t
val mul_ctx : ctx -> Bigint.t -> Bigint.t -> Bigint.t

val mont_of_ctx : ctx -> Montgomery.ctx
(** The underlying Montgomery context, for limb-level hot paths
    ({!Fixed_base} tables, in-form homomorphic chains). *)

val to_mont_ctx : ctx -> Bigint.t -> int array
(** Reduce mod the context modulus and convert to Montgomery form. *)

val of_mont_ctx : ctx -> int array -> Bigint.t
(** Convert out of Montgomery form to a canonical residue. *)
