(** Fixed-base windowed exponentiation (BGMW).

    Precomputes, once per (base, modulus) pair, the powers
    [base^(i * 2^(j*w))] in Montgomery form so that later
    exponentiations cost ~[bits/w] multiplications and no squarings.
    Worth it whenever the same base is raised to many exponents:
    Paillier noise subgroup generators, per-key precomputation.

    Tables are immutable after {!create} and safe to share across
    Domains. *)

type t

val create : ?window:int -> Modular.ctx -> max_bits:int -> Bigint.t -> t
(** [create ctx ~max_bits base] builds the table covering exponents of
    up to [max_bits] bits.  [window] defaults to 4; the table holds
    [(2^window - 1) * ceil (max_bits / window)] residues.
    @raise Invalid_argument on a window outside [1..8] or
    non-positive [max_bits]. *)

val max_bits : t -> int
(** Largest exponent bit-length the table covers. *)

val pow : Modular.ctx -> t -> Bigint.t -> Bigint.t
(** [pow ctx t e] = [base^e mod m] as a canonical residue.
    @raise Invalid_argument if [e] is negative or wider than
    [max_bits t]. *)

val pow_raw : t -> Bigint.t -> int array
(** Same, but returns the Montgomery-form limb vector (for callers that
    keep chaining multiplications in form). *)
