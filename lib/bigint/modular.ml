(* Modular arithmetic on Bigint values: exponentiation, inverses, GCD.
   Exponentiation dispatches to Montgomery for odd moduli (the only case
   Paillier needs) and falls back to divide-based square-and-multiply for
   even moduli so the API stays total. *)

exception Not_invertible

let check_modulus m =
  if Bigint.compare m Bigint.zero <= 0 then
    invalid_arg "Modular: modulus must be positive"

let reduce a m = Bigint.erem a m

let add a b m =
  check_modulus m;
  Bigint.erem (Bigint.add a b) m

let sub a b m =
  check_modulus m;
  Bigint.erem (Bigint.sub a b) m

let mul a b m =
  check_modulus m;
  Bigint.erem (Bigint.mul a b) m

(* Binary gcd would be faster but Euclid on Nat division is simple and is
   never on the hot path (one inverse per key generation). *)
let rec gcd a b =
  let a = Bigint.abs a and b = Bigint.abs b in
  if Bigint.is_zero b then a else gcd b (Bigint.rem a b)

let lcm a b =
  if Bigint.is_zero a || Bigint.is_zero b then Bigint.zero
  else Bigint.abs (Bigint.div (Bigint.mul a b) (gcd a b))

(* Extended Euclid: returns (g, u, v) with u*a + v*b = g = gcd(a, b). *)
let egcd a b =
  let rec go r0 r1 s0 s1 t0 t1 =
    if Bigint.is_zero r1 then (r0, s0, t0)
    else begin
      let q, r2 = Bigint.divmod r0 r1 in
      go r1 r2 s1 (Bigint.sub s0 (Bigint.mul q s1)) t1 (Bigint.sub t0 (Bigint.mul q t1))
    end
  in
  go a b Bigint.one Bigint.zero Bigint.zero Bigint.one

let invert a m =
  check_modulus m;
  let a = reduce a m in
  let g, u, _ = egcd a m in
  if not (Bigint.equal g Bigint.one) then raise Not_invertible;
  reduce u m

(* Naive square-and-multiply with full division at each step.  Only used
   for even moduli; all cryptographic moduli here are odd. *)
let pow_mod_naive base exponent m =
  let base = ref (reduce base m) in
  let acc = ref (reduce Bigint.one m) in
  let nbits = Bigint.num_bits exponent in
  for i = 0 to nbits - 1 do
    if Bigint.testbit exponent i then acc := mul !acc !base m;
    base := mul !base !base m
  done;
  !acc

let pow_mod ?ctx base exponent m =
  check_modulus m;
  if Bigint.is_negative exponent then
    invalid_arg "Modular.pow_mod: negative exponent (invert first)";
  let base = reduce base m in
  if Bigint.is_odd m then begin
    let ctx =
      match ctx with
      | Some c -> c
      | None -> Montgomery.create (Bigint.magnitude m)
    in
    Bigint.of_nat
      (Montgomery.pow_mod ctx (Bigint.magnitude base) (Bigint.magnitude exponent))
  end
  else pow_mod_naive base exponent m

(* Reusable Montgomery context wrapped at the Bigint level, so callers with
   a fixed modulus (Paillier's n and n^2) pay context setup once. *)
type ctx = { modulus : Bigint.t; mont : Montgomery.ctx }

let make_ctx m =
  check_modulus m;
  if Bigint.is_even m then invalid_arg "Modular.make_ctx: even modulus";
  { modulus = m; mont = Montgomery.create (Bigint.magnitude m) }

let ctx_modulus c = c.modulus

let pow_ctx c base exponent =
  if Bigint.is_negative exponent then
    invalid_arg "Modular.pow_ctx: negative exponent (invert first)";
  let base = reduce base c.modulus in
  Bigint.of_nat
    (Montgomery.pow_mod c.mont (Bigint.magnitude base) (Bigint.magnitude exponent))

let mul_ctx c a b =
  let a = reduce a c.modulus and b = reduce b c.modulus in
  Bigint.of_nat
    (Montgomery.mul_mod c.mont (Bigint.magnitude a) (Bigint.magnitude b))

let mont_of_ctx c = c.mont

let to_mont_ctx c a =
  Montgomery.to_mont c.mont (Bigint.magnitude (reduce a c.modulus))

let of_mont_ctx c a = Bigint.of_nat (Montgomery.of_mont c.mont a)
