#!/bin/sh
# CI entry point: full build, the complete test suite, and a sub-second
# smoke bench that (a) runs one seeded wavefront-DTW session at pool
# sizes 1 and 4, cross-checks the plaintext distance and asserts the two
# transcripts are identical (the lib/parallel determinism contract), and
# (b) serves two concurrent TCP sessions through Server_loop with a
# seeded key and a tiny series, cross-checking both revealed distances
# (the concurrent-server correctness contract).  The same smoke also
# exercises the crypto hot path: a seeded session with the offline
# noise pool on and off must hash to the same transcript bytes, and a
# packed+pooled session must reveal the baseline distance with zero
# pool misses (an offline run that silently pays online
# exponentiations fails CI).
#
# The smoke run records a JSONL telemetry trace, which is then (c) linted
# through ppst_analyze (closed attribute vocabulary — telemetry must not
# be able to carry plaintexts, offsets or ciphertexts) plus a belt-and-
# braces grep for anything bignum-sized leaking into the trace.
#
# (d) a chaos smoke: the same client/server pair is run once
# clean and once against a server whose frame path hard-drops the
# connection every 64 frames (--chaos-profile drop-every-64); the
# retry + resume machinery must repair every cut and the two revealed
# distances must be identical.  (The codec corruption fuzz and the
# per-frame-index disconnect matrix run inside `dune runtest` —
# test/test_resilience.ml.)
#
# (e) an overload smoke: a capacity-2 server with admission
# quotas takes a 6-client burst — every client must still reveal the
# correct distance (Busy + retry-after absorbs the overflow), the
# health probe must answer before and after the burst, and an
# oversized session must be turned away with a typed quota verdict
# before any Paillier work.
#
# (f) observability: two smoke traces of the same seed must
# diff clean while a doctored 2x-latency copy must be flagged; a
# truncated trace tail is reported with its own exit code; the catalog
# smoke runs with the metrics sidecar up and the exposition page (both
# the HTTP endpoint and the in-protocol metrics verb) must carry the
# server-side families; and `ppst_analyze report` runs advisory over
# the checked-in BENCH_*.json artifacts.
#
# (g) a failover smoke: a 4-worker supervised server with a
# shared session spool serves one session whose worker is SIGKILLed
# mid-stream from outside; the client must ride the reconnect + Resume
# path onto a surviving worker (the dead worker's memory is gone — the
# session rehydrates from the spool), the revealed distance must be
# bit-identical to a single-process reference run of the same seeds,
# and the supervisor must report exactly one restart.
#
# Finally (h) a degraded smoke: the same 4-worker catalog server with
# every spool write failing ENOSPC (--disk-chaos enospc-every-1) serves
# a complete catalog query — full results, zero incomplete candidates,
# zero worker crashes — while the health probe reports status 3
# (degraded: serving, crash-durability lost).
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

trace="$(mktemp /tmp/ppst_ci_trace.XXXXXX.jsonl)"
trace2=""
doctored=""
chaos_dir="$(mktemp -d /tmp/ppst_ci_chaos.XXXXXX)"
trap 'rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir"' EXIT INT TERM

dune exec bench/main.exe -- smoke --log-json --trace-out "$trace"

# Telemetry smoke: the trace must be non-empty, valid JSONL, and pass the
# leakage lint (only whitelisted strings, no numbers beyond count/size/
# duration magnitude).
test -s "$trace"
dune exec bin/ppst_analyze.exe -- trace "$trace" --lint
# Nothing bignum-sized may ever appear in a trace (a Paillier ciphertext,
# masked sum or offset would be hundreds of digits; honest counters stay
# well under 17).
if grep -E '[0-9]{17}' "$trace"; then
  echo "ci: leakage lint FAILED: oversized number in telemetry trace" >&2
  exit 1
fi
echo "ci: telemetry trace lint OK ($(wc -l < "$trace") records)"

# Regression diff: a second run of the same seed must diff clean against
# the first (byte counts repeat exactly; latency floors absorb scheduler
# noise), and a candidate whose span and round latencies are doubled
# must be flagged.
trace2="$(mktemp /tmp/ppst_ci_trace2.XXXXXX.jsonl)"
doctored="$(mktemp /tmp/ppst_ci_doctored.XXXXXX.jsonl)"
trap 'rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir"' EXIT INT TERM
# The 100ms floor keeps sub-100ms span jitter (scheduler noise on a
# loaded CI host) out of the verdict; the doctored 2x copy still trips
# it through the session span and the latency total.
dune exec bench/main.exe -- smoke --log-json --trace-out "$trace2" >/dev/null
dune exec bin/ppst_analyze.exe -- diff "$trace" "$trace2" --latency-floor-ms 100
python3 - "$trace" "$doctored" <<'PYEOF'
import json, sys
def double(o):
    if isinstance(o, dict):
        return {k: (v * 2 if k in ("dt", "latency_s") and isinstance(v, (int, float))
                    else double(v)) for k, v in o.items()}
    if isinstance(o, list):
        return [double(v) for v in o]
    return o
with open(sys.argv[1]) as src, open(sys.argv[2], "w") as dst:
    for line in src:
        line = line.strip()
        if line:
            dst.write(json.dumps(double(json.loads(line))) + "\n")
PYEOF
diff_rc=0
dune exec bin/ppst_analyze.exe -- diff "$trace" "$doctored" --latency-floor-ms 100 \
  >/dev/null 2>&1 || diff_rc=$?
if [ "$diff_rc" -ne 1 ]; then
  echo "ci: regression diff FAILED: doctored 2x slowdown not flagged (exit $diff_rc)" >&2
  exit 1
fi
echo "ci: regression diff OK (same seed quiet, doctored 2x slowdown flagged)"

# A trace whose final line was cut mid-record (crashed writer, partial
# copy) is linted on the complete prefix and reported with exit 3, not
# a parse abort.
total_bytes="$(wc -c < "$trace")"
head -c "$((total_bytes - 20))" "$trace" > "$doctored"
trunc_rc=0
dune exec bin/ppst_analyze.exe -- trace "$doctored" --lint \
  >/dev/null 2>&1 || trunc_rc=$?
if [ "$trunc_rc" -ne 3 ]; then
  echo "ci: truncated-tail FAILED: want exit 3, got $trunc_rc" >&2
  exit 1
fi
echo "ci: truncated trace tail reported with exit 3"

# Advisory bench report over the checked-in artifacts (gating needs
# --strict --baseline; here it only has to parse and summarize).
dune exec bin/ppst_analyze.exe -- report BENCH_*.json >/dev/null
echo "ci: bench report OK ($(ls BENCH_*.json | wc -l) artifact(s))"

# Chaos smoke: clean run vs a fault-injected server; distances must match.
./_build/default/bin/ppst_datagen.exe --seed 4101 -n 12 "$chaos_dir/y.csv"
./_build/default/bin/ppst_datagen.exe --seed 4102 -n 12 "$chaos_dir/x.csv"

chaos_session() {
  # $1 = port; remaining args = extra server flags.  Prints the distance.
  port="$1"; shift
  ./_build/default/bin/ppst_server.exe -p "$port" --seed ci-chaos "$@" \
    "$chaos_dir/y.csv" >"$chaos_dir/server-$port.log" 2>&1 &
  server_pid=$!
  sleep 1
  ./_build/default/bin/ppst_client.exe -p "$port" --seed ci-chaos-client \
    "$chaos_dir/x.csv" >"$chaos_dir/client-$port.log" 2>&1
  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  sed -n 's/^secure DTW distance.*= //p' "$chaos_dir/client-$port.log"
}

clean_distance="$(chaos_session 17971)"
chaos_distance="$(chaos_session 17972 --chaos-profile drop-every-64 --chaos-seed 7)"
if [ -z "$clean_distance" ] || [ "$clean_distance" != "$chaos_distance" ]; then
  echo "ci: chaos smoke FAILED: clean='$clean_distance' chaos='$chaos_distance'" >&2
  cat "$chaos_dir"/client-*.log "$chaos_dir"/server-*.log >&2 || true
  exit 1
fi
echo "ci: chaos smoke OK (distance $chaos_distance, clean = drop-every-64)"

# Overload smoke: capacity 2, quotas sized to admit the honest series
# with headroom, 6 concurrent clients.
overload_port=17973
./_build/default/bin/ppst_server.exe -p "$overload_port" --seed ci-overload \
  --concurrency 2 --max-series-len 64 --max-dim 4 --max-cells 4096 \
  "$chaos_dir/y.csv" >"$chaos_dir/server-overload.log" 2>&1 &
overload_pid=$!
trap 'kill "$overload_pid" 2>/dev/null || true; rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir"' EXIT INT TERM
sleep 1

./_build/default/bin/ppst_client.exe -p "$overload_port" --health \
  >"$chaos_dir/health-before.log"
grep -q '^status: ready$' "$chaos_dir/health-before.log"

burst_pids=""
for i in 1 2 3 4 5 6; do
  ./_build/default/bin/ppst_client.exe -p "$overload_port" \
    --seed "ci-overload-$i" --retries 100 "$chaos_dir/x.csv" \
    >"$chaos_dir/burst-$i.log" 2>&1 &
  burst_pids="$burst_pids $!"
done
wait_failed=0
for job in $burst_pids; do
  wait "$job" || wait_failed=1
done
if [ "$wait_failed" -ne 0 ]; then
  echo "ci: overload smoke FAILED: a burst client did not complete" >&2
  cat "$chaos_dir"/burst-*.log "$chaos_dir/server-overload.log" >&2 || true
  exit 1
fi
for i in 1 2 3 4 5 6; do
  burst_distance="$(sed -n 's/^secure DTW distance.*= //p' "$chaos_dir/burst-$i.log")"
  if [ -z "$burst_distance" ] || [ "$burst_distance" != "$clean_distance" ]; then
    echo "ci: overload smoke FAILED: client $i distance '$burst_distance' != '$clean_distance'" >&2
    cat "$chaos_dir/burst-$i.log" "$chaos_dir/server-overload.log" >&2 || true
    exit 1
  fi
done

# The probe still answers once the burst drains, and the serving path
# turned clients away at least once while it was full.
./_build/default/bin/ppst_client.exe -p "$overload_port" --health \
  >"$chaos_dir/health-after.log"
grep -q '^status:' "$chaos_dir/health-after.log"

kill "$overload_pid" 2>/dev/null || true
wait "$overload_pid" 2>/dev/null || true

# An oversized declaration is refused with a typed quota verdict before
# any Paillier work — not a crash, not a hung session.
tight_port=17974
./_build/default/bin/ppst_server.exe -p "$tight_port" --seed ci-overload-tight \
  --max-series-len 4 "$chaos_dir/y.csv" >"$chaos_dir/server-tight.log" 2>&1 &
tight_pid=$!
trap 'kill "$tight_pid" 2>/dev/null || true; rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir"' EXIT INT TERM
sleep 1
rejected=0
./_build/default/bin/ppst_client.exe -p "$tight_port" \
  --seed ci-overload-hostile "$chaos_dir/x.csv" \
  >"$chaos_dir/hostile.log" 2>&1 || rejected=$?
kill "$tight_pid" 2>/dev/null || true
wait "$tight_pid" 2>/dev/null || true
if [ "$rejected" -ne 69 ] || ! grep -q 'series-len quota' "$chaos_dir/hostile.log"; then
  echo "ci: overload smoke FAILED: oversized session not quota-rejected (exit $rejected)" >&2
  cat "$chaos_dir/hostile.log" "$chaos_dir/server-tight.log" >&2 || true
  exit 1
fi
echo "ci: overload smoke OK (6/6 burst distances correct, oversized session quota-rejected)"

# Catalog smoke: a seeded 20-record catalog server; the pruned top-1 of
# `query` must equal the exhaustive nearest of the legacy --search scan
# (the no-false-dismissal contract, end to end over TCP), a
# within-radius Euclidean query must actually prune, and an oversized
# query declaration must be quota-rejected with exit 69 before any
# Paillier work.
cat_dir="$(mktemp -d /tmp/ppst_ci_catalog.XXXXXX)"
trap 'kill "$tight_pid" 2>/dev/null || true; rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir" "$cat_dir"' EXIT INT TERM
mkdir "$cat_dir/store"
i=0
while [ "$i" -lt 20 ]; do
  ./_build/default/bin/ppst_datagen.exe -t ecg -n 12 --max-value 40 \
    --seed $((i + 1)) "$cat_dir/store/rec$(printf %02d "$i").csv"
  i=$((i + 1))
done >/dev/null
# the query series is record 6's twin, so the true nearest is known
./_build/default/bin/ppst_datagen.exe -t ecg -n 12 --max-value 40 \
  --seed 7 "$cat_dir/query.csv" >/dev/null

catalog_port=17975
./_build/default/bin/ppst_server.exe -p "$catalog_port" --seed ci-catalog \
  --catalog "$cat_dir/store" --sessions 12 --metrics-port 0 \
  >"$cat_dir/server.log" 2>&1 &
catalog_pid=$!
trap 'kill "$catalog_pid" 2>/dev/null || true; kill "$tight_pid" 2>/dev/null || true; rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir" "$cat_dir"' EXIT INT TERM
# A fixed sleep flakes on a loaded host: poll the health probe until the
# listener is up (or give up and dump the server log).
ready=0
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  if ./_build/default/bin/ppst_client.exe health -p "$catalog_port" \
       >/dev/null 2>&1; then
    ready=1
    break
  fi
  sleep 0.5
done
if [ "$ready" -ne 1 ]; then
  echo "ci: catalog smoke FAILED: server never became ready on port $catalog_port" >&2
  cat "$cat_dir/server.log" >&2 || true
  exit 1
fi

./_build/default/bin/ppst_client.exe catalog -p "$catalog_port" \
  >"$cat_dir/list.log"
if [ "$(wc -l < "$cat_dir/list.log")" -ne 20 ]; then
  echo "ci: catalog smoke FAILED: catalog list has $(wc -l < "$cat_dir/list.log") rows, want 20" >&2
  exit 1
fi

./_build/default/bin/ppst_client.exe query -p "$catalog_port" \
  --seed ci-catalog-q --distance dtw --top 1 "$cat_dir/query.csv" \
  >"$cat_dir/query.log" 2>&1
pruned_top1="$(sed -n 's/^hit: record \([0-9]*\).*/\1/p' "$cat_dir/query.log")"

./_build/default/bin/ppst_client.exe -p "$catalog_port" \
  --seed ci-catalog-s --distance dtw --search "$cat_dir/query.csv" \
  >"$cat_dir/scan.log" 2>&1
exhaustive_top1="$(sed -n 's/^nearest: record \([0-9]*\).*/\1/p' "$cat_dir/scan.log")"

if [ -z "$pruned_top1" ] || [ "$pruned_top1" != "$exhaustive_top1" ] || [ "$pruned_top1" != "6" ]; then
  echo "ci: catalog smoke FAILED: pruned top-1 '$pruned_top1' != exhaustive '$exhaustive_top1' (want 6)" >&2
  cat "$cat_dir/query.log" "$cat_dir/scan.log" "$cat_dir/server.log" >&2 || true
  exit 1
fi

# The pruning stage must earn its keep: a tight Euclidean radius around
# the twin record discards most of the catalog without losing the hit.
./_build/default/bin/ppst_client.exe query -p "$catalog_port" \
  --seed ci-catalog-w --distance euclidean --within 50 "$cat_dir/query.csv" \
  >"$cat_dir/within.log" 2>&1
grep -q '^hit: record 6 ' "$cat_dir/within.log"
pruned_n="$(sed -n 's/^catalog: [0-9]* candidate(s), \([0-9]*\) pruned.*/\1/p' "$cat_dir/within.log")"
if [ -z "$pruned_n" ] || [ "$pruned_n" -lt 10 ]; then
  echo "ci: catalog smoke FAILED: within-radius query pruned only '$pruned_n' of 20" >&2
  cat "$cat_dir/within.log" "$cat_dir/server.log" >&2 || true
  exit 1
fi

# Metrics endpoint scrape while the catalog server is live: the sidecar
# (bound to an ephemeral port, announced on stdout) and the in-protocol
# metrics verb must both expose the server-side families (the query.*
# and ledger.* families live in the querying client's registry and are
# asserted by `bench observability`), and the page must be a complete
# OpenMetrics document.
metrics_port="$(sed -n 's/^metrics port: //p' "$cat_dir/server.log")"
if [ -z "$metrics_port" ]; then
  echo "ci: observability smoke FAILED: server did not announce a metrics port" >&2
  cat "$cat_dir/server.log" >&2 || true
  exit 1
fi
curl -sf "http://127.0.0.1:$metrics_port/metrics" >"$cat_dir/scrape.txt"
./_build/default/bin/ppst_client.exe metrics -p "$catalog_port" \
  >"$cat_dir/metrics-verb.txt"
for page in "$cat_dir/scrape.txt" "$cat_dir/metrics-verb.txt"; do
  for family in ppst_server_sessions_accepted ppst_server_sessions_completed \
                ppst_transport_rounds ppst_metrics_endpoint_scrapes; do
    if ! grep -q "^$family" "$page"; then
      echo "ci: observability smoke FAILED: $page lacks $family" >&2
      head -40 "$page" >&2 || true
      exit 1
    fi
  done
  if ! tail -1 "$page" | grep -q '^# EOF'; then
    echo "ci: observability smoke FAILED: $page is not EOF-terminated" >&2
    exit 1
  fi
done
echo "ci: observability smoke OK (endpoint + metrics verb expose the server families)"

kill "$catalog_pid" 2>/dev/null || true
wait "$catalog_pid" 2>/dev/null || true

# Oversized query declaration: 20 candidates x (8 segments + 1) = 180
# cells against a 150-cell budget is refused with the typed verdict.
tight_cat_port=17976
./_build/default/bin/ppst_server.exe -p "$tight_cat_port" --seed ci-catalog-t \
  --catalog "$cat_dir/store" --max-cells 150 --sessions 1 \
  >"$cat_dir/server-tight.log" 2>&1 &
tight_cat_pid=$!
trap 'kill "$tight_cat_pid" 2>/dev/null || true; kill "$catalog_pid" 2>/dev/null || true; kill "$tight_pid" 2>/dev/null || true; rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir" "$cat_dir"' EXIT INT TERM
sleep 1
rejected=0
./_build/default/bin/ppst_client.exe query -p "$tight_cat_port" \
  --seed ci-catalog-h --distance dtw --top 1 "$cat_dir/query.csv" \
  >"$cat_dir/oversize.log" 2>&1 || rejected=$?
kill "$tight_cat_pid" 2>/dev/null || true
wait "$tight_cat_pid" 2>/dev/null || true
if [ "$rejected" -ne 69 ] || ! grep -q 'cells quota' "$cat_dir/oversize.log"; then
  echo "ci: catalog smoke FAILED: oversized query not quota-rejected (exit $rejected)" >&2
  cat "$cat_dir/oversize.log" "$cat_dir/server-tight.log" >&2 || true
  exit 1
fi
echo "ci: catalog smoke OK (pruned top-1 = exhaustive top-1 = record 6, $pruned_n/20 pruned within radius, oversized query quota-rejected)"

# Failover smoke: 4 supervised workers, one SIGKILLed mid-session.
fo_dir="$(mktemp -d /tmp/ppst_ci_failover.XXXXXX)"
trap 'kill "$tight_cat_pid" 2>/dev/null || true; kill "$catalog_pid" 2>/dev/null || true; kill "$tight_pid" 2>/dev/null || true; rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir" "$cat_dir" "$fo_dir"' EXIT INT TERM
# 64 points keeps the session around 2 s at the default key size, so an
# external kill 0.7 s in lands reliably mid-stream.
./_build/default/bin/ppst_datagen.exe --seed 4201 -n 64 "$fo_dir/y.csv" >/dev/null
./_build/default/bin/ppst_datagen.exe --seed 4202 -n 64 "$fo_dir/x.csv" >/dev/null

# Single-process reference run of the same seeds.
ref_port=17977
./_build/default/bin/ppst_server.exe -p "$ref_port" --seed ci-failover \
  "$fo_dir/y.csv" >"$fo_dir/server-ref.log" 2>&1 &
ref_pid=$!
sleep 1
./_build/default/bin/ppst_client.exe -p "$ref_port" --seed ci-failover-client \
  "$fo_dir/x.csv" >"$fo_dir/client-ref.log" 2>&1
kill "$ref_pid" 2>/dev/null || true
wait "$ref_pid" 2>/dev/null || true
ref_distance="$(sed -n 's/^secure DTW distance.*= //p' "$fo_dir/client-ref.log")"

# Supervised run: the first connection round-robins to worker slot 0,
# whose pid the parent announces on stdout — that is the one we kill.
fo_port=17978
./_build/default/bin/ppst_server.exe -p "$fo_port" --seed ci-failover \
  --workers 4 --spool-dir "$fo_dir/spool" \
  "$fo_dir/y.csv" >"$fo_dir/server-fo.log" 2>&1 &
fo_pid=$!
trap 'kill "$fo_pid" 2>/dev/null || true; kill "$tight_cat_pid" 2>/dev/null || true; kill "$catalog_pid" 2>/dev/null || true; kill "$tight_pid" 2>/dev/null || true; rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir" "$cat_dir" "$fo_dir"' EXIT INT TERM
sleep 1
worker0_pid="$(sed -n 's/^worker 0: pid //p' "$fo_dir/server-fo.log" | head -1)"
if [ -z "$worker0_pid" ]; then
  echo "ci: failover smoke FAILED: supervisor never announced worker 0" >&2
  cat "$fo_dir/server-fo.log" >&2 || true
  exit 1
fi
./_build/default/bin/ppst_client.exe -p "$fo_port" --seed ci-failover-client \
  "$fo_dir/x.csv" >"$fo_dir/client-fo.log" 2>&1 &
fo_client_pid=$!
sleep 0.7
kill -9 "$worker0_pid" 2>/dev/null || true
fo_client_rc=0
wait "$fo_client_pid" || fo_client_rc=$?
fo_distance="$(sed -n 's/^secure DTW distance.*= //p' "$fo_dir/client-fo.log")"
kill "$fo_pid" 2>/dev/null || true
wait "$fo_pid" 2>/dev/null || true
if [ "$fo_client_rc" -ne 0 ] || [ -z "$fo_distance" ] || [ "$fo_distance" != "$ref_distance" ]; then
  echo "ci: failover smoke FAILED: distance '$fo_distance' != reference '$ref_distance' (client exit $fo_client_rc)" >&2
  cat "$fo_dir/client-fo.log" "$fo_dir/server-fo.log" >&2 || true
  exit 1
fi
if ! grep -q '^supervisor restarts: 1$' "$fo_dir/server-fo.log"; then
  echo "ci: failover smoke FAILED: restart counter is not exactly 1" >&2
  cat "$fo_dir/server-fo.log" >&2 || true
  exit 1
fi
echo "ci: failover smoke OK (worker SIGKILLed mid-session, distance $fo_distance = reference, exactly 1 restart)"

# Degraded smoke: a 4-worker catalog server whose spool is on a "full
# disk" — every snapshot write draws an injected ENOSPC — must still
# serve a complete catalog query (sessions continue non-durably), must
# not crash a single worker, and the worker that lost durability must
# answer the health probe with status 3.
dg_dir="$(mktemp -d /tmp/ppst_ci_degraded.XXXXXX)"
trap 'kill "$fo_pid" 2>/dev/null || true; kill "$tight_cat_pid" 2>/dev/null || true; kill "$catalog_pid" 2>/dev/null || true; kill "$tight_pid" 2>/dev/null || true; rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir" "$cat_dir" "$fo_dir" "$dg_dir"' EXIT INT TERM
dg_port=17979
./_build/default/bin/ppst_server.exe -p "$dg_port" --seed ci-degraded \
  --catalog "$cat_dir/store" --workers 4 --spool-dir "$dg_dir/spool" \
  --disk-chaos enospc-every-1 >"$dg_dir/server.log" 2>&1 &
dg_pid=$!
trap 'kill "$dg_pid" 2>/dev/null || true; kill "$fo_pid" 2>/dev/null || true; kill "$tight_cat_pid" 2>/dev/null || true; kill "$catalog_pid" 2>/dev/null || true; kill "$tight_pid" 2>/dev/null || true; rm -f "$trace" "$trace2" "$doctored"; rm -rf "$chaos_dir" "$cat_dir" "$fo_dir" "$dg_dir"' EXIT INT TERM
ready=0
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
  if ./_build/default/bin/ppst_client.exe health -p "$dg_port" \
       >/dev/null 2>&1; then
    ready=1
    break
  fi
  sleep 0.5
done
if [ "$ready" -ne 1 ]; then
  echo "ci: degraded smoke FAILED: server never became ready on port $dg_port" >&2
  cat "$dg_dir/server.log" >&2 || true
  exit 1
fi

# The query must complete with the full (exhaustive-identical) answer
# and exit 0 — not the partial-results exit 77.
dg_rc=0
./_build/default/bin/ppst_client.exe query -p "$dg_port" \
  --seed ci-degraded-q --distance dtw --top 1 "$cat_dir/query.csv" \
  >"$dg_dir/query.log" 2>&1 || dg_rc=$?
if [ "$dg_rc" -ne 0 ] || ! grep -q '^hit: record 6 ' "$dg_dir/query.log" \
   || grep -q '^incomplete:' "$dg_dir/query.log"; then
  echo "ci: degraded smoke FAILED: query under ENOSPC spool (exit $dg_rc)" >&2
  cat "$dg_dir/query.log" "$dg_dir/server.log" >&2 || true
  exit 1
fi

# Probes round-robin across workers; the one that paid the failed spool
# writes answers 3 (degraded).  Give the ring a few spins.
dg_health=""
for _ in 1 2 3 4 5 6 7 8 9 10 11 12; do
  probe_rc=0
  ./_build/default/bin/ppst_client.exe health -p "$dg_port" \
    >"$dg_dir/health.log" 2>&1 || probe_rc=$?
  if [ "$probe_rc" -eq 3 ]; then
    dg_health=3
    break
  fi
done
if [ "$dg_health" != "3" ] || ! grep -q '^status: degraded$' "$dg_dir/health.log"; then
  echo "ci: degraded smoke FAILED: no worker reported health 3 (degraded)" >&2
  cat "$dg_dir/health.log" "$dg_dir/server.log" >&2 || true
  exit 1
fi

kill "$dg_pid" 2>/dev/null || true
wait "$dg_pid" 2>/dev/null || true
if ! grep -q '^supervisor restarts: 0$' "$dg_dir/server.log"; then
  echo "ci: degraded smoke FAILED: worker crashed under ENOSPC spool" >&2
  cat "$dg_dir/server.log" >&2 || true
  exit 1
fi
echo "ci: degraded smoke OK (full query under ENOSPC spool, health 3, zero crashes)"
