#!/bin/sh
# CI entry point: full build, the complete test suite, and a sub-second
# smoke bench that (a) runs one seeded wavefront-DTW session at pool
# sizes 1 and 4, cross-checks the plaintext distance and asserts the two
# transcripts are identical (the lib/parallel determinism contract), and
# (b) serves two concurrent TCP sessions through Server_loop with a
# seeded key and a tiny series, cross-checking both revealed distances
# (the concurrent-server correctness contract).
#
# The smoke run records a JSONL telemetry trace, which is then (c) linted
# through ppst_analyze (closed attribute vocabulary — telemetry must not
# be able to carry plaintexts, offsets or ciphertexts) plus a belt-and-
# braces grep for anything bignum-sized leaking into the trace.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

trace="$(mktemp /tmp/ppst_ci_trace.XXXXXX.jsonl)"
trap 'rm -f "$trace"' EXIT INT TERM

dune exec bench/main.exe -- smoke --log-json --trace-out "$trace"

# Telemetry smoke: the trace must be non-empty, valid JSONL, and pass the
# leakage lint (only whitelisted strings, no numbers beyond count/size/
# duration magnitude).
test -s "$trace"
dune exec bin/ppst_analyze.exe -- trace "$trace" --lint
# Nothing bignum-sized may ever appear in a trace (a Paillier ciphertext,
# masked sum or offset would be hundreds of digits; honest counters stay
# well under 17).
if grep -E '[0-9]{17}' "$trace"; then
  echo "ci: leakage lint FAILED: oversized number in telemetry trace" >&2
  exit 1
fi
echo "ci: telemetry trace lint OK ($(wc -l < "$trace") records)"
