#!/bin/sh
# CI entry point: full build, the complete test suite, and a sub-second
# smoke bench that (a) runs one seeded wavefront-DTW session at pool
# sizes 1 and 4, cross-checks the plaintext distance and asserts the two
# transcripts are identical (the lib/parallel determinism contract), and
# (b) serves two concurrent TCP sessions through Server_loop with a
# seeded key and a tiny series, cross-checking both revealed distances
# (the concurrent-server correctness contract).
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- smoke
