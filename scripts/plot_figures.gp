# Gnuplot script regenerating the paper-figure plots from bench output.
#
#   dune exec bench/main.exe -- --out results
#   gnuplot -e "dir='results'" scripts/plot_figures.gp
#
# Produces results/fig{5,6,7,9,11}.png from the whitespace-aligned tables
# the harness writes (comment and header lines start with non-digits, so
# every data row is selected by a leading integer).

if (!exists("dir")) dir = "results"
set terminal pngcairo size 900,600 font "sans,11"
set grid
set key top left

set output dir."/fig5.png"
set title "Figure 5: secure DTW vs sequence size"
set xlabel "sequence length n"; set ylabel "seconds"
plot dir."/fig5.txt" using 1:2 with linespoints title "phase 1", \
     ""             using 1:3 with linespoints title "phase 2", \
     ""             using 1:5 with linespoints title "total"

set output dir."/fig6.png"
set title "Figure 6: per-party time vs sequence size"
plot dir."/fig6.txt" using 1:2 with linespoints title "client online", \
     ""             using 1:3 with linespoints title "server", \
     ""             using 1:4 with linespoints title "client offline"

set output dir."/fig7.png"
set title "Figure 7: DTW vs DFD"
plot dir."/fig7.txt" using 1:2 with linespoints title "DTW", \
     ""             using 1:3 with linespoints title "DFD"

set output dir."/fig9.png"
set title "Figure 9: phase times vs dimensionality"
set xlabel "element dimensionality d"
plot dir."/fig9.txt" using 1:2 with linespoints title "phase 1", \
     ""             using 1:3 with linespoints title "phase 2"

set output dir."/fig11.png"
set title "Figure 11: phase 2 vs random-set size"
set xlabel "random set size k"
plot dir."/fig11.txt" using 1:2 with linespoints title "phase 2 (s)", \
     ""              using 1:3 axes x1y2 with linespoints title "KiB (right)"
